(* A minimal self-contained JSON tree (the container has no yojson).
   Formerly nested inside [Obs]; hoisted so [Histo], [Tracer] and
   [Regress] can use it without depending on the observability context.
   [Obs.Json] remains an alias. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape_to b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

(* Floats keep a decimal point (or exponent) so they parse back as
   [Float], never [Int]; non-finite values have no JSON form and
   degrade to null. *)
let float_repr x =
  if Float.is_nan x || Float.abs x = infinity then "null"
  else begin
    let s = Printf.sprintf "%.12g" x in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s else s ^ ".0"
  end

let rec to_buffer b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float x -> Buffer.add_string b (float_repr x)
  | String s -> escape_to b s
  | List xs ->
    Buffer.add_char b '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char b ',';
        to_buffer b x)
      xs;
    Buffer.add_char b ']'
  | Obj kvs ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        escape_to b k;
        Buffer.add_char b ':';
        to_buffer b v)
      kvs;
    Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  to_buffer b v;
  Buffer.contents b

(* Recursive-descent parser over a string with an index cell. *)
let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = failwith (Printf.sprintf "Json.of_string: %s at offset %d" msg !pos) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () = Some c then advance () else fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else begin
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents b
        | '\\' ->
          (if !pos >= n then fail "unterminated escape"
           else begin
             let e = s.[!pos] in
             advance ();
             match e with
             | '"' -> Buffer.add_char b '"'
             | '\\' -> Buffer.add_char b '\\'
             | '/' -> Buffer.add_char b '/'
             | 'n' -> Buffer.add_char b '\n'
             | 'r' -> Buffer.add_char b '\r'
             | 't' -> Buffer.add_char b '\t'
             | 'b' -> Buffer.add_char b '\b'
             | 'f' -> Buffer.add_char b '\012'
             | 'u' ->
               if !pos + 4 > n then fail "bad \\u escape";
               let code = int_of_string ("0x" ^ String.sub s !pos 4) in
               pos := !pos + 4;
               (* BMP only; encode as UTF-8 *)
               if code < 0x80 then Buffer.add_char b (Char.chr code)
               else if code < 0x800 then begin
                 Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                 Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
               end
               else begin
                 Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                 Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                 Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
               end
             | _ -> fail "bad escape"
           end);
          go ()
        | c ->
          Buffer.add_char b c;
          go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok then
      match float_of_string_opt tok with
      | Some x -> Float x
      | None -> fail "bad number"
    else begin
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt tok with Some x -> Float x | None -> fail "bad number")
    end
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        List (items [])
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (fields [])
      end
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member name = function
  | Obj kvs -> List.assoc_opt name kvs
  | _ -> None

let to_float = function
  | Int i -> float_of_int i
  | Float x -> x
  | _ -> failwith "Json.to_float: not a number"

(* Atomic file write shared by every JSON artifact sink (stats dumps,
   traces, bench records): write to a temp file next to the target,
   then rename over it, so a SIGKILL mid-write never leaves a truncated
   artifact behind (same discipline as [Css_flow.Persist]). *)
let write_file path (emit : out_channel -> unit) =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let oc = open_out tmp in
  (try
     emit oc;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path
