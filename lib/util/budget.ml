(* Resource budgets for long-running flows. A budget is armed once at
   flow start and polled at iteration/phase boundaries; polling is two
   procfs line scans plus a clock read, cheap enough for every scheduler
   iteration but not for inner timing loops.

   Two thresholds per resource: above [soft_frac] of a limit every poll
   reports [Soft] (the caller sheds one rung of load per poll — shrink
   rings, drop workers, pick a cheaper engine — until pressure clears or
   its ladder is exhausted), crossing the limit itself reports [Hard]
   (the flow must stop with best-so-far now, before the kernel or the
   batch system stops it for us). The Obs trip counters and snapshots
   fire only on the *first* crossing per resource and level, so the
   artifact records when pressure began, not every poll under it. When
   both resources are over, the wall clock wins the reason string —
   deadlines are the budget the user set explicitly, RSS is usually
   inherited from the machine. *)

type limits = {
  wall_seconds : float option;
  rss_bytes : int option;
  soft_frac : float;
}

let no_limits = { wall_seconds = None; rss_bytes = None; soft_frac = 0.85 }

type pressure = Under | Soft of string | Hard of string

type t = {
  limits : limits;
  started : float;
  obs : Obs.t;
  polls : Obs.counter;
  soft_trips : Obs.counter;
  hard_trips : Obs.counter;
  mutable wall_soft : bool; (* first Soft "wall" trip already recorded *)
  mutable rss_soft : bool;
  mutable hard_reason : string option; (* sticky: budgets never un-trip *)
  tr : Tracer.t; (* counter lanes: budget pressure over time *)
  tr_wall : Tracer.name;
  tr_rss : Tracer.name;
}

let create ?(obs = Obs.null) ?(tracer = Tracer.null) limits =
  if not (limits.soft_frac > 0. && limits.soft_frac <= 1.) then
    invalid_arg "Budget.create: soft_frac must be in (0, 1]";
  (match limits.wall_seconds with
  | Some s when not (s > 0.) -> invalid_arg "Budget.create: wall_seconds must be positive"
  | _ -> ());
  (match limits.rss_bytes with
  | Some b when b <= 0 -> invalid_arg "Budget.create: rss_bytes must be positive"
  | _ -> ());
  {
    limits;
    started = Wall_clock.now ();
    obs;
    polls = Obs.counter obs "budget.polls";
    soft_trips = Obs.counter obs "budget.soft_trips";
    hard_trips = Obs.counter obs "budget.hard_trips";
    wall_soft = false;
    rss_soft = false;
    hard_reason = None;
    tr = tracer;
    tr_wall = Tracer.intern tracer "budget.wall_s";
    tr_rss = Tracer.intern tracer "budget.rss_bytes";
  }

let elapsed_seconds t = Wall_clock.now () -. t.started

let remaining_wall t =
  Option.map (fun limit -> Float.max 0. (limit -. elapsed_seconds t)) t.limits.wall_seconds

let hard t = t.hard_reason <> None

let trip t ~level ~reason ~used ~limit =
  let c = if level = "hard" then t.hard_trips else t.soft_trips in
  Obs.incr c;
  Obs.snapshot t.obs ~label:"budget"
    [
      ("level", Obs.Json.String level);
      ("reason", Obs.Json.String reason);
      ("used", Obs.Json.Float used);
      ("limit", Obs.Json.Float limit);
      ("elapsed_seconds", Obs.Json.Float (elapsed_seconds t));
    ]

(* Classify one resource as `Hard / `Soft / `Under against its limit. *)
let classify ~soft_frac ~used ~limit =
  if used >= limit then `Hard else if used >= soft_frac *. limit then `Soft else `Under

let poll t =
  Obs.incr t.polls;
  match t.hard_reason with
  | Some reason -> Hard reason
  | None ->
    let wall_used = elapsed_seconds t in
    let wall_state =
      match t.limits.wall_seconds with
      | None -> `Under
      | Some limit -> classify ~soft_frac:t.limits.soft_frac ~used:wall_used ~limit
    in
    let rss_used = float_of_int (Rusage.current_rss_bytes ()) in
    if Tracer.enabled t.tr then begin
      Tracer.sample t.tr ~track:0 t.tr_wall wall_used;
      if rss_used > 0. then Tracer.sample t.tr ~track:0 t.tr_rss rss_used
    end;
    let rss_state =
      match t.limits.rss_bytes with
      | None -> `Under
      | Some _ when rss_used = 0. -> `Under (* RSS not measurable here *)
      | Some limit -> classify ~soft_frac:t.limits.soft_frac ~used:rss_used ~limit:(float_of_int limit)
    in
    let wall_limit = Option.value t.limits.wall_seconds ~default:0. in
    let rss_limit = float_of_int (Option.value t.limits.rss_bytes ~default:0) in
    (match (wall_state, rss_state) with
    | `Hard, _ ->
      t.hard_reason <- Some "wall";
      trip t ~level:"hard" ~reason:"wall" ~used:wall_used ~limit:wall_limit;
      Hard "wall"
    | _, `Hard ->
      t.hard_reason <- Some "rss";
      trip t ~level:"hard" ~reason:"rss" ~used:rss_used ~limit:rss_limit;
      Hard "rss"
    | `Soft, _ ->
      if not t.wall_soft then begin
        t.wall_soft <- true;
        trip t ~level:"soft" ~reason:"wall" ~used:wall_used ~limit:wall_limit
      end;
      Soft "wall"
    | _, `Soft ->
      if not t.rss_soft then begin
        t.rss_soft <- true;
        trip t ~level:"soft" ~reason:"rss" ~used:rss_used ~limit:rss_limit
      end;
      Soft "rss"
    | `Under, `Under -> Under)
