(** Growable vector of unboxed [float]s.

    The storage is a monomorphic [float array], which OCaml lays out as a
    flat array of doubles: unlike a polymorphic ['a Vec.t] specialized at
    [float] (whose generic reads box every element they return), [get]
    returns an unboxed double and [set] is a plain store. Used for the
    float columns of the design database — positions, scheduled
    latencies — so the timer's inner loops never allocate when reading
    them (see [docs/PERFORMANCE.md]). *)

type t

(** [create ?capacity ()] is an empty vector. O(1). *)
val create : ?capacity:int -> unit -> t

(** [make n x] is a vector of length [n] filled with [x]. O(n). *)
val make : int -> float -> t

val length : t -> int

(** [get v i] / [set v i x] are bounds-checked element access. O(1).
    @raise Invalid_argument when [i] is out of bounds. *)
val get : t -> int -> float

val set : t -> int -> float -> unit

(** [unsafe_get v i] / [unsafe_set v i x] skip the bounds check — for
    inner loops whose index range was validated outside the loop. O(1). *)
val unsafe_get : t -> int -> float

val unsafe_set : t -> int -> float -> unit

(** [push v x] appends and returns the new element's index. Amortized
    O(1), doubling growth. *)
val push : t -> float -> int

val clear : t -> unit

(** [fill v x] overwrites every element with [x]. O(n). *)
val fill : t -> float -> unit

val iteri : (int -> float -> unit) -> t -> unit
val to_array : t -> float array
