let basis = 0xcbf29ce484222325L
let prime = 0x100000001b3L

let mix_byte h b = Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) prime

let mix_int64 h x =
  let h = ref h in
  for shift = 0 to 7 do
    h := mix_byte !h (Int64.to_int (Int64.shift_right_logical x (shift * 8)))
  done;
  !h

let mix_int h x = mix_int64 h (Int64.of_int x)
let mix_float h x = mix_int64 h (Int64.bits_of_float x)

let of_string s =
  let h = ref basis in
  String.iter (fun c -> h := mix_byte !h (Char.code c)) s;
  !h
