(* Perf-regression diffing between two stats/bench JSON artifacts.

   Two input shapes, auto-detected:
   - a BENCH_css.json array (bench/main.ml): records keyed by
     design/engine carrying wall_ms, cells_per_sec, peak_rss_bytes,
     edge_ratio and per-phase histograms;
   - an Obs stats dump (--stats-json / Obs.write_json): an object with
     "counters", "spans", "histograms".

   Each comparable metric becomes a row with a signed delta in the
   *worse* direction (positive = regression) and an optional gating
   threshold; [gate] fails when any gated row exceeds its threshold.
   Metrics follow the repo's 0-means-not-measured convention: a zero
   baseline or current value yields an informational row, never a
   division by ~0.

   This lives in the library (not bin/css_stats.ml) so the gate logic
   itself is unit-tested; the CLI is a thin cmdliner shell. *)

type thresholds = {
  max_wall_pct : float; (* wall_ms, span totals *)
  max_rss_pct : float; (* peak_rss_bytes *)
  max_p95_pct : float; (* histogram p95 shifts, edge ratio *)
}

let default_thresholds = { max_wall_pct = 10.0; max_rss_pct = 5.0; max_p95_pct = 25.0 }

type row = {
  r_key : string; (* e.g. "sb18/iterative-essential" *)
  r_metric : string; (* e.g. "wall_ms" *)
  r_base : float;
  r_cur : float;
  r_delta_pct : float; (* positive = worse *)
  r_threshold_pct : float option; (* None = informational *)
  r_regressed : bool;
}

type report = {
  rows : row list;
  missing : string list; (* baseline keys absent from current *)
}

let regressions r = List.filter (fun row -> row.r_regressed) r.rows
let ok r = regressions r = [] && r.missing = []

(* --- helpers --- *)

let num_field j name = Option.map Json.to_float (Json.member name j)
let str_field j name =
  match Json.member name j with Some (Json.String s) -> Some s | _ -> None

let pct_delta ~base ~cur = 100.0 *. (cur -. base) /. base

(* [worse_sign]: +1 when larger is worse (wall, rss), -1 when smaller is
   worse (cells/sec). *)
let mk_row ~key ~metric ~worse_sign ~threshold ~base ~cur =
  if base <= 0.0 || cur < 0.0 then
    (* not measured on one side: informational, never gated *)
    Some { r_key = key; r_metric = metric; r_base = base; r_cur = cur;
           r_delta_pct = 0.0; r_threshold_pct = None; r_regressed = false }
  else begin
    let delta = worse_sign *. pct_delta ~base ~cur in
    let regressed = match threshold with Some th -> delta > th | None -> false in
    Some { r_key = key; r_metric = metric; r_base = base; r_cur = cur;
           r_delta_pct = delta; r_threshold_pct = threshold; r_regressed = regressed }
  end

let opt_row rows = function Some r -> rows := r :: !rows | None -> ()

let histo_p95 hj =
  match Json.member "p95" hj with Some v -> Some (Json.to_float v) | None -> None

(* --- bench-array mode --- *)

let bench_key j =
  match (str_field j "design", str_field j "engine") with
  | Some d, Some e -> d ^ "/" ^ e
  | Some d, None -> d
  | None, _ -> "?"

let compare_histograms ~th ~key ~rows base_h cur_h =
  match (base_h, cur_h) with
  | Some (Json.Obj base_kvs), Some (Json.Obj _ as cur_obj) ->
    List.iter
      (fun (name, bh) ->
        match Json.member name cur_obj with
        | Some ch -> (
          match (histo_p95 bh, histo_p95 ch) with
          | Some bp, Some cp ->
            opt_row rows
              (mk_row ~key ~metric:(name ^ ".p95") ~worse_sign:1.0
                 ~threshold:(Some th.max_p95_pct) ~base:bp ~cur:cp)
          | _ -> ())
        | None -> ())
      base_kvs
  | _ -> ()

let diff_bench ~th base_records cur_records =
  let tbl = Hashtbl.create 16 in
  List.iter (fun j -> Hashtbl.replace tbl (bench_key j) j) cur_records;
  let rows = ref [] in
  let missing = ref [] in
  List.iter
    (fun bj ->
      let key = bench_key bj in
      match Hashtbl.find_opt tbl key with
      | None -> missing := key :: !missing
      | Some cj ->
        let metric name ~worse_sign ~threshold =
          match (num_field bj name, num_field cj name) with
          | Some b, Some c -> opt_row rows (mk_row ~key ~metric:name ~worse_sign ~threshold ~base:b ~cur:c)
          | _ -> ()
        in
        metric "wall_ms" ~worse_sign:1.0 ~threshold:(Some th.max_wall_pct);
        metric "peak_rss_bytes" ~worse_sign:1.0 ~threshold:(Some th.max_rss_pct);
        metric "cells_per_sec" ~worse_sign:(-1.0) ~threshold:None;
        metric "iterations" ~worse_sign:1.0 ~threshold:None;
        (* edge ratio: prefer the precomputed field, else derive *)
        (match (num_field bj "edge_ratio", num_field cj "edge_ratio") with
        | Some b, Some c ->
          opt_row rows
            (mk_row ~key ~metric:"edge_ratio" ~worse_sign:1.0
               ~threshold:(Some th.max_p95_pct) ~base:b ~cur:c)
        | _ -> (
          let derived j =
            match (num_field j "edges_extracted", num_field j "edges_full") with
            | Some e, Some f when f > 0.0 -> Some (e /. f)
            | _ -> None
          in
          match (derived bj, derived cj) with
          | Some b, Some c ->
            opt_row rows
              (mk_row ~key ~metric:"edge_ratio" ~worse_sign:1.0
                 ~threshold:(Some th.max_p95_pct) ~base:b ~cur:c)
          | _ -> ()));
        compare_histograms ~th ~key ~rows (Json.member "histograms" bj) (Json.member "histograms" cj);
        (* numeric fields the baseline predates (a freshly added metric,
           e.g. cache_hit_ratio against an older artifact): surface them
           as informational rows — never gated, never a failure — so the
           report shows the new numbers until the baseline is refreshed *)
        (match cj with
        | Json.Obj kvs ->
          List.iter
            (fun (name, v) ->
              match v with
              | Json.Int _ | Json.Float _ when num_field bj name = None ->
                opt_row rows
                  (mk_row ~key ~metric:name ~worse_sign:1.0 ~threshold:None ~base:0.0
                     ~cur:(Json.to_float v))
              | _ -> ())
            kvs
        | _ -> ()))
    base_records;
  { rows = List.rev !rows; missing = List.rev !missing }

(* --- stats-dump mode --- *)

let diff_stats ~th base cur =
  let rows = ref [] in
  let missing = ref [] in
  (* span totals: wall-time regressions per phase path *)
  let span_tbl j =
    let tbl = Hashtbl.create 32 in
    (match Json.member "spans" j with
    | Some (Json.List items) ->
      List.iter
        (fun s ->
          match (str_field s "path", num_field s "total_s") with
          | Some p, Some v -> Hashtbl.replace tbl p v
          | _ -> ())
        items
    | _ -> ());
    tbl
  in
  let base_spans = span_tbl base and cur_spans = span_tbl cur in
  Hashtbl.fold (fun p v acc -> (p, v) :: acc) base_spans []
  |> List.sort compare
  |> List.iter (fun (p, b) ->
         match Hashtbl.find_opt cur_spans p with
         | None -> missing := ("span " ^ p) :: !missing
         | Some c ->
           opt_row rows
             (mk_row ~key:p ~metric:"total_s" ~worse_sign:1.0
                ~threshold:(Some th.max_wall_pct) ~base:b ~cur:c));
  (* histogram p95 shifts *)
  compare_histograms ~th ~key:"histo" ~rows (Json.member "histograms" base)
    (Json.member "histograms" cur);
  (* counters: informational, only when changed *)
  (match (Json.member "counters" base, Json.member "counters" cur) with
  | Some (Json.Obj bc), Some (Json.Obj _ as cobj) ->
    List.iter
      (fun (name, bv) ->
        match (bv, Json.member name cobj) with
        | Json.Int b, Some (Json.Int c) when b <> c ->
          opt_row rows
            (mk_row ~key:"counter" ~metric:name ~worse_sign:1.0 ~threshold:None
               ~base:(float_of_int b) ~cur:(float_of_int c))
        | _ -> ())
      bc
  | _ -> ());
  { rows = List.rev !rows; missing = List.rev !missing }

let diff ?(thresholds = default_thresholds) ~baseline ~current () =
  match (baseline, current) with
  | Json.List b, Json.List c -> diff_bench ~th:thresholds b c
  | (Json.Obj _ as b), (Json.Obj _ as c) -> diff_stats ~th:thresholds b c
  | _ -> failwith "Regress.diff: inputs must both be bench arrays or both stats objects"

(* --- synthetic regression (gate self-test) --- *)

(* Scale the wall/RSS-like metrics of [j] — bench wall/RSS, span
   totals, histogram p95s — up by [pct] percent, leaving everything
   else alone. CI runs the gate against its own baseline with an
   inflated current to prove the gate actually trips. *)
let inflate ~pct j =
  let f = 1.0 +. (pct /. 100.0) in
  let scale_num = function
    | Json.Int i -> Json.Int (int_of_float (Float.round (float_of_int i *. f)))
    | Json.Float x -> Json.Float (x *. f)
    | v -> v
  in
  let scale_fields names = function
    | Json.Obj kvs ->
      Json.Obj (List.map (fun (k, v) -> if List.mem k names then (k, scale_num v) else (k, v)) kvs)
    | v -> v
  in
  match j with
  | Json.List records -> Json.List (List.map (scale_fields [ "wall_ms"; "peak_rss_bytes" ]) records)
  | Json.Obj kvs ->
    Json.Obj
      (List.map
         (fun (k, v) ->
           match (k, v) with
           | "spans", Json.List spans ->
             (k, Json.List (List.map (scale_fields [ "total_s" ]) spans))
           | "histograms", Json.Obj hs ->
             (k, Json.Obj (List.map (fun (name, h) -> (name, scale_fields [ "p95" ] h)) hs))
           | _ -> (k, v))
         kvs)
  | v -> v

(* --- rendering --- *)

let render report =
  let b = Buffer.create 1024 in
  let headers = [| "key"; "metric"; "baseline"; "current"; "delta"; "threshold"; "" |] in
  let fmt_v x =
    if Float.abs x >= 1e6 then Printf.sprintf "%.3e" x
    else if Float.is_integer x && Float.abs x < 1e6 then Printf.sprintf "%.0f" x
    else Printf.sprintf "%.4g" x
  in
  let cells =
    List.map
      (fun r ->
        [|
          r.r_key;
          r.r_metric;
          fmt_v r.r_base;
          fmt_v r.r_cur;
          Printf.sprintf "%+.1f%%" r.r_delta_pct;
          (match r.r_threshold_pct with Some t -> Printf.sprintf "%.0f%%" t | None -> "-");
          (if r.r_regressed then "REGRESSED" else "ok");
        |])
      report.rows
  in
  let ncols = Array.length headers in
  let widths = Array.map String.length headers in
  List.iter (fun row -> Array.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) row) cells;
  let emit row =
    for i = 0 to ncols - 1 do
      if i > 0 then Buffer.add_string b "  ";
      let c = row.(i) in
      Buffer.add_string b c;
      if i < ncols - 1 then Buffer.add_string b (String.make (widths.(i) - String.length c) ' ')
    done;
    Buffer.add_char b '\n'
  in
  emit headers;
  emit (Array.map (fun w -> String.make w '-') widths);
  List.iter emit cells;
  List.iter (fun k -> Buffer.add_string b (Printf.sprintf "MISSING from current: %s\n" k)) report.missing;
  let n_reg = List.length (regressions report) in
  Buffer.add_string b
    (if n_reg = 0 && report.missing = [] then "gate: ok\n"
     else Printf.sprintf "gate: %d regression(s), %d missing record(s)\n" n_reg (List.length report.missing));
  Buffer.contents b
