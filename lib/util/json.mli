(** A minimal self-contained JSON tree (the container has no yojson);
    the printer and parser round-trip ([of_string (to_string v) = v] for
    trees without non-finite floats).

    Hoisted out of [Obs] so the rest of [Css_util] ([Histo], [Tracer],
    [Regress]) can produce and consume JSON without depending on the
    observability context; [Obs.Json] is an alias of this module. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** [to_string v] prints compact JSON. Non-finite floats print as
    [null] (JSON has no representation for them). *)
val to_string : t -> string

(** [to_buffer b v] appends the compact form to [b]. *)
val to_buffer : Buffer.t -> t -> unit

(** [escape_to b s] appends [s] as a quoted, escaped JSON string. *)
val escape_to : Buffer.t -> string -> unit

(** [float_repr x] is the canonical textual form of a float: always
    re-parses as [Float] (decimal point or exponent forced), non-finite
    values print as [null]. *)
val float_repr : float -> string

(** [of_string s] parses one JSON value. Numbers without [.], [e] or
    leading [-0]-style fractions parse as [Int] when they fit.
    @raise Failure on malformed input. *)
val of_string : string -> t

(** [member name v] is the field [name] of object [v], if present. *)
val member : string -> t -> t option

(** [to_float v] coerces [Int]/[Float]. @raise Failure otherwise. *)
val to_float : t -> float

(** [write_file path emit] writes a file atomically: [emit] receives a
    channel for a temp file in the same directory, which is renamed
    over [path] only after [emit] returns and the channel is flushed.
    An interrupted run never leaves a truncated artifact. The temp file
    is removed if [emit] raises. *)
val write_file : string -> (out_channel -> unit) -> unit
