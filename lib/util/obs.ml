(* Observability contexts: counters, spans, snapshots, JSON dumping.
   See obs.mli for the contract; docs/OBSERVABILITY.md for the taxonomy. *)

(* The JSON tree moved to [Json] (lib/util/json.ml) so sibling modules
   can use it; keep the historical [Obs.Json] path as an alias. *)
module Json = Json

(* ------------------------------------------------------------------ *)

type counter = {
  c_name : string;
  mutable c_value : int;
}

(* One shared sink cell for every counter request on the null context;
   increments land here and are never read. *)
let dummy_counter = { c_name = ""; c_value = 0 }

type span_cell = {
  s_path : string;
  mutable s_total : float;
  mutable s_count : int;
}

type snap = {
  sn_label : string;
  sn_span : string;
  sn_seq : int;
  sn_fields : (string * Json.t) list;
}

type t = {
  on : bool;
  trace : out_channel option;
  ctr_tbl : (string, counter) Hashtbl.t;
  span_tbl : (string, span_cell) Hashtbl.t;
  histo_tbl : (string, Histo.t) Hashtbl.t;
  mutable stack : (string * float) list;  (* innermost first; (name, t0) *)
  mutable snaps : snap list;  (* reversed *)
  mutable seq : int;
  ep : float;  (* wall-clock at creation: the run's correlation anchor *)
  mutable tracer : Tracer.t;  (* mirror spans/snapshots onto a timeline *)
  mutable track : int;
}

let make ~trace =
  {
    on = true;
    trace;
    ctr_tbl = Hashtbl.create 32;
    span_tbl = Hashtbl.create 16;
    histo_tbl = Hashtbl.create 16;
    stack = [];
    snaps = [];
    seq = 0;
    ep = Wall_clock.epoch ();
    tracer = Tracer.null;
    track = 0;
  }

let null =
  {
    on = false;
    trace = None;
    ctr_tbl = Hashtbl.create 1;
    span_tbl = Hashtbl.create 1;
    histo_tbl = Hashtbl.create 1;
    stack = [];
    snaps = [];
    seq = 0;
    ep = 0.0;
    tracer = Tracer.null;
    track = 0;
  }

let create () = make ~trace:None
let create_trace oc = make ~trace:(Some oc)
let enabled t = t.on
let epoch t = t.ep

let attach_tracer t ?(track = 0) tracer =
  if t.on then begin
    t.tracer <- tracer;
    t.track <- track
  end

let tracer t = t.tracer

(* --- counters --- *)

let counter t name =
  if not t.on then dummy_counter
  else begin
    match Hashtbl.find_opt t.ctr_tbl name with
    | Some c -> c
    | None ->
      let c = { c_name = name; c_value = 0 } in
      Hashtbl.add t.ctr_tbl name c;
      c
  end

let incr c = c.c_value <- c.c_value + 1

let add c n =
  if n < 0 then invalid_arg "Obs.add: counters are monotone (negative delta)";
  c.c_value <- c.c_value + n

let value c = c.c_value

let counters t =
  Hashtbl.fold (fun name c acc -> (name, c.c_value) :: acc) t.ctr_tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* --- histograms --- *)

let histogram t name =
  if not t.on then Histo.dummy
  else begin
    match Hashtbl.find_opt t.histo_tbl name with
    | Some h -> h
    | None ->
      let h = Histo.create () in
      Hashtbl.add t.histo_tbl name h;
      h
  end

let histograms t =
  Hashtbl.fold (fun name h acc -> if Histo.count h > 0 then (name, h) :: acc else acc) t.histo_tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* --- spans --- *)

let stack_path stack = String.concat "/" (List.rev_map fst stack)

let open_span t name =
  if t.on then begin
    t.stack <- (name, Wall_clock.now ()) :: t.stack;
    if Tracer.enabled t.tracer then
      Tracer.span_begin t.tracer ~track:t.track (Tracer.intern t.tracer name)
  end

let close_span t name =
  if t.on then begin
    match t.stack with
    | [] -> invalid_arg "Obs.close_span: no open span"
    | (top, t0) :: rest ->
      if top <> name then
        invalid_arg
          (Printf.sprintf "Obs.close_span: closing %S but innermost open span is %S" name top);
      let dt = Wall_clock.now () -. t0 in
      let path = stack_path t.stack in
      t.stack <- rest;
      if Tracer.enabled t.tracer then
        Tracer.span_end t.tracer ~track:t.track (Tracer.intern t.tracer name);
      let cell =
        match Hashtbl.find_opt t.span_tbl path with
        | Some c -> c
        | None ->
          let c = { s_path = path; s_total = 0.0; s_count = 0 } in
          Hashtbl.add t.span_tbl path c;
          c
      in
      cell.s_total <- cell.s_total +. dt;
      cell.s_count <- cell.s_count + 1;
      match t.trace with
      | Some oc -> Printf.fprintf oc "[obs] span  %-40s %9.3f ms\n%!" path (1000.0 *. dt)
      | None -> ()
  end

let span t name f =
  if not t.on then f ()
  else begin
    open_span t name;
    Fun.protect ~finally:(fun () -> close_span t name) f
  end

let spans t =
  Hashtbl.fold (fun _ c acc -> (c.s_path, c.s_total, c.s_count) :: acc) t.span_tbl []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)

(* --- snapshots --- *)

let snapshot t ~label fields =
  if t.on then begin
    let seq = t.seq in
    t.seq <- seq + 1;
    t.snaps <- { sn_label = label; sn_span = stack_path t.stack; sn_seq = seq; sn_fields = fields } :: t.snaps;
    if Tracer.enabled t.tracer then
      Tracer.instant t.tracer ~track:t.track (Tracer.intern t.tracer label);
    match t.trace with
    | Some oc ->
      Printf.fprintf oc "[obs] snap  %s#%d" label seq;
      List.iter
        (fun (k, v) ->
          let s =
            match v with
            | Json.Float x -> Printf.sprintf "%.2f" x
            | v -> Json.to_string v
          in
          Printf.fprintf oc " %s=%s" k s)
        fields;
      Printf.fprintf oc "\n%!"
    | None -> ()
  end

let snapshots t = List.rev_map (fun s -> (s.sn_label, s.sn_span, s.sn_fields)) t.snaps

(* --- dumping --- *)

let to_json t =
  Json.Obj
    [
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (counters t)));
      ( "spans",
        Json.List
          (List.map
             (fun (path, total, count) ->
               Json.Obj
                 [
                   ("path", Json.String path);
                   ("total_s", Json.Float total);
                   ("count", Json.Int count);
                 ])
             (spans t)) );
      ( "snapshots",
        Json.List
          (List.map
             (fun (label, span_path, fields) ->
               Json.Obj
                 [
                   ("label", Json.String label);
                   ("span", Json.String span_path);
                   ("fields", Json.Obj fields);
                 ])
             (snapshots t)) );
      ( "histograms",
        Json.Obj (List.map (fun (name, h) -> (name, Histo.to_json h)) (histograms t)) );
      ( "clock",
        Json.Obj [ ("source", Json.String "monotonic"); ("epoch_s", Json.Float t.ep) ] );
    ]

(* Atomic (tmp+rename): an interrupted run truncates the temp file, not
   a previously good stats dump. *)
let write_json t path =
  Json.write_file path (fun oc ->
      match to_json t with
      | Json.Obj kvs ->
        output_string oc "{\n";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then output_string oc ",\n";
            let b = Buffer.create 256 in
            Json.escape_to b k;
            Buffer.add_string b ": ";
            Json.to_buffer b v;
            output_string oc (Buffer.contents b))
          kvs;
        output_string oc "\n}\n"
      | v -> output_string oc (Json.to_string v))
