(* Observability contexts: counters, spans, snapshots, JSON dumping.
   See obs.mli for the contract; docs/OBSERVABILITY.md for the taxonomy. *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  let escape_to b s =
    Buffer.add_char b '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.add_char b '"'

  (* Floats keep a decimal point (or exponent) so they parse back as
     [Float], never [Int]; non-finite values have no JSON form and
     degrade to null. *)
  let float_repr x =
    if Float.is_nan x || Float.abs x = infinity then "null"
    else begin
      let s = Printf.sprintf "%.12g" x in
      if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s else s ^ ".0"
    end

  let rec to_buffer b = function
    | Null -> Buffer.add_string b "null"
    | Bool true -> Buffer.add_string b "true"
    | Bool false -> Buffer.add_string b "false"
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float x -> Buffer.add_string b (float_repr x)
    | String s -> escape_to b s
    | List xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          to_buffer b x)
        xs;
      Buffer.add_char b ']'
    | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          escape_to b k;
          Buffer.add_char b ':';
          to_buffer b v)
        kvs;
      Buffer.add_char b '}'

  let to_string v =
    let b = Buffer.create 256 in
    to_buffer b v;
    Buffer.contents b

  (* Recursive-descent parser over a string with an index cell. *)
  let of_string s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = failwith (Printf.sprintf "Obs.Json.of_string: %s at offset %d" msg !pos) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
      | _ -> ()
    in
    let expect c =
      if peek () = Some c then advance () else fail (Printf.sprintf "expected %C" c)
    in
    let literal word v =
      if !pos + String.length word <= n && String.sub s !pos (String.length word) = word then begin
        pos := !pos + String.length word;
        v
      end
      else fail (Printf.sprintf "expected %s" word)
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string"
        else begin
          let c = s.[!pos] in
          advance ();
          match c with
          | '"' -> Buffer.contents b
          | '\\' ->
            (if !pos >= n then fail "unterminated escape"
             else begin
               let e = s.[!pos] in
               advance ();
               match e with
               | '"' -> Buffer.add_char b '"'
               | '\\' -> Buffer.add_char b '\\'
               | '/' -> Buffer.add_char b '/'
               | 'n' -> Buffer.add_char b '\n'
               | 'r' -> Buffer.add_char b '\r'
               | 't' -> Buffer.add_char b '\t'
               | 'b' -> Buffer.add_char b '\b'
               | 'f' -> Buffer.add_char b '\012'
               | 'u' ->
                 if !pos + 4 > n then fail "bad \\u escape";
                 let code = int_of_string ("0x" ^ String.sub s !pos 4) in
                 pos := !pos + 4;
                 (* BMP only; encode as UTF-8 *)
                 if code < 0x80 then Buffer.add_char b (Char.chr code)
                 else if code < 0x800 then begin
                   Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                   Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                 end
                 else begin
                   Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                   Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                   Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                 end
               | _ -> fail "bad escape"
             end);
            go ()
          | c ->
            Buffer.add_char b c;
            go ()
        end
      in
      go ()
    in
    let parse_number () =
      let start = !pos in
      let is_num_char c =
        (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
      in
      while !pos < n && is_num_char s.[!pos] do
        advance ()
      done;
      let tok = String.sub s start (!pos - start) in
      if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok then
        match float_of_string_opt tok with
        | Some x -> Float x
        | None -> fail "bad number"
      else begin
        match int_of_string_opt tok with
        | Some i -> Int i
        | None -> (
          match float_of_string_opt tok with Some x -> Float x | None -> fail "bad number")
      end
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '"' -> String (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              items (v :: acc)
            | Some ']' ->
              advance ();
              List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (items [])
        end
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              fields ((k, v) :: acc)
            | Some '}' ->
              advance ();
              List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (fields [])
        end
      | Some _ -> parse_number ()
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v

  let member name = function
    | Obj kvs -> List.assoc_opt name kvs
    | _ -> None

  let to_float = function
    | Int i -> float_of_int i
    | Float x -> x
    | _ -> failwith "Obs.Json.to_float: not a number"
end

(* ------------------------------------------------------------------ *)

type counter = {
  c_name : string;
  mutable c_value : int;
}

(* One shared sink cell for every counter request on the null context;
   increments land here and are never read. *)
let dummy_counter = { c_name = ""; c_value = 0 }

type span_cell = {
  s_path : string;
  mutable s_total : float;
  mutable s_count : int;
}

type snap = {
  sn_label : string;
  sn_span : string;
  sn_seq : int;
  sn_fields : (string * Json.t) list;
}

type t = {
  on : bool;
  trace : out_channel option;
  ctr_tbl : (string, counter) Hashtbl.t;
  span_tbl : (string, span_cell) Hashtbl.t;
  mutable stack : (string * float) list;  (* innermost first; (name, t0) *)
  mutable snaps : snap list;  (* reversed *)
  mutable seq : int;
}

let make ~trace =
  {
    on = true;
    trace;
    ctr_tbl = Hashtbl.create 32;
    span_tbl = Hashtbl.create 16;
    stack = [];
    snaps = [];
    seq = 0;
  }

let null =
  {
    on = false;
    trace = None;
    ctr_tbl = Hashtbl.create 1;
    span_tbl = Hashtbl.create 1;
    stack = [];
    snaps = [];
    seq = 0;
  }

let create () = make ~trace:None
let create_trace oc = make ~trace:(Some oc)
let enabled t = t.on

(* --- counters --- *)

let counter t name =
  if not t.on then dummy_counter
  else begin
    match Hashtbl.find_opt t.ctr_tbl name with
    | Some c -> c
    | None ->
      let c = { c_name = name; c_value = 0 } in
      Hashtbl.add t.ctr_tbl name c;
      c
  end

let incr c = c.c_value <- c.c_value + 1

let add c n =
  if n < 0 then invalid_arg "Obs.add: counters are monotone (negative delta)";
  c.c_value <- c.c_value + n

let value c = c.c_value

let counters t =
  Hashtbl.fold (fun name c acc -> (name, c.c_value) :: acc) t.ctr_tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* --- spans --- *)

let stack_path stack = String.concat "/" (List.rev_map fst stack)

let open_span t name =
  if t.on then t.stack <- (name, Unix.gettimeofday ()) :: t.stack

let close_span t name =
  if t.on then begin
    match t.stack with
    | [] -> invalid_arg "Obs.close_span: no open span"
    | (top, t0) :: rest ->
      if top <> name then
        invalid_arg
          (Printf.sprintf "Obs.close_span: closing %S but innermost open span is %S" name top);
      let dt = Unix.gettimeofday () -. t0 in
      let path = stack_path t.stack in
      t.stack <- rest;
      let cell =
        match Hashtbl.find_opt t.span_tbl path with
        | Some c -> c
        | None ->
          let c = { s_path = path; s_total = 0.0; s_count = 0 } in
          Hashtbl.add t.span_tbl path c;
          c
      in
      cell.s_total <- cell.s_total +. dt;
      cell.s_count <- cell.s_count + 1;
      match t.trace with
      | Some oc -> Printf.fprintf oc "[obs] span  %-40s %9.3f ms\n%!" path (1000.0 *. dt)
      | None -> ()
  end

let span t name f =
  if not t.on then f ()
  else begin
    open_span t name;
    Fun.protect ~finally:(fun () -> close_span t name) f
  end

let spans t =
  Hashtbl.fold (fun _ c acc -> (c.s_path, c.s_total, c.s_count) :: acc) t.span_tbl []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)

(* --- snapshots --- *)

let snapshot t ~label fields =
  if t.on then begin
    let seq = t.seq in
    t.seq <- seq + 1;
    t.snaps <- { sn_label = label; sn_span = stack_path t.stack; sn_seq = seq; sn_fields = fields } :: t.snaps;
    match t.trace with
    | Some oc ->
      Printf.fprintf oc "[obs] snap  %s#%d" label seq;
      List.iter
        (fun (k, v) ->
          let s =
            match v with
            | Json.Float x -> Printf.sprintf "%.2f" x
            | v -> Json.to_string v
          in
          Printf.fprintf oc " %s=%s" k s)
        fields;
      Printf.fprintf oc "\n%!"
    | None -> ()
  end

let snapshots t = List.rev_map (fun s -> (s.sn_label, s.sn_span, s.sn_fields)) t.snaps

(* --- dumping --- *)

let to_json t =
  Json.Obj
    [
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (counters t)));
      ( "spans",
        Json.List
          (List.map
             (fun (path, total, count) ->
               Json.Obj
                 [
                   ("path", Json.String path);
                   ("total_s", Json.Float total);
                   ("count", Json.Int count);
                 ])
             (spans t)) );
      ( "snapshots",
        Json.List
          (List.map
             (fun (label, span_path, fields) ->
               Json.Obj
                 [
                   ("label", Json.String label);
                   ("span", Json.String span_path);
                   ("fields", Json.Obj fields);
                 ])
             (snapshots t)) );
    ]

let write_json t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      match to_json t with
      | Json.Obj kvs ->
        output_string oc "{\n";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then output_string oc ",\n";
            let b = Buffer.create 256 in
            Json.escape_to b k;
            Buffer.add_string b ": ";
            Json.to_buffer b v;
            output_string oc (Buffer.contents b))
          kvs;
        output_string oc "\n}\n"
      | v -> output_string oc (Json.to_string v))
