type severity =
  | Info
  | Warning
  | Error

let severity_name = function Info -> "info" | Warning -> "warning" | Error -> "error"

type t = {
  severity : severity;
  code : string;
  file : string option;
  line : int option;
  message : string;
  hint : string option;
}

let make ?file ?line ?hint severity ~code message =
  { severity; code; file; line; message; hint }

let error ?file ?line ?hint ~code message = make ?file ?line ?hint Error ~code message
let warning ?file ?line ?hint ~code message = make ?file ?line ?hint Warning ~code message
let info ?file ?line ?hint ~code message = make ?file ?line ?hint Info ~code message

let is_error d = d.severity = Error

let has_errors ds = List.exists is_error ds

let to_string d =
  let loc =
    match (d.file, d.line) with
    | Some f, Some l -> Printf.sprintf " %s:%d:" f l
    | Some f, None -> Printf.sprintf " %s:" f
    | None, Some l -> Printf.sprintf " line %d:" l
    | None, None -> ""
  in
  let hint = match d.hint with Some h -> Printf.sprintf " (hint: %s)" h | None -> "" in
  Printf.sprintf "%s[%s]%s %s%s" (severity_name d.severity) d.code loc d.message hint

exception Failed of t list

let () =
  Printexc.register_printer (function
    | Failed ds ->
      Some
        (Printf.sprintf "Diag.Failed:\n%s"
           (String.concat "\n" (List.map to_string ds)))
    | _ -> None)

type collector = {
  mutable rev : t list;
  mutable errors : int;
}

let collector () = { rev = []; errors = 0 }

let emit c d =
  c.rev <- d :: c.rev;
  if is_error d then c.errors <- c.errors + 1

let diags c = List.rev c.rev

let error_count c = c.errors

(* Two-row Levenshtein. *)
let edit_distance a b =
  let la = String.length a and lb = String.length b in
  if la = 0 then lb
  else if lb = 0 then la
  else begin
    let prev = Array.init (lb + 1) (fun j -> j) in
    let cur = Array.make (lb + 1) 0 in
    for i = 1 to la do
      cur.(0) <- i;
      for j = 1 to lb do
        let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
        cur.(j) <- min (min (cur.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
      done;
      Array.blit cur 0 prev 0 (lb + 1)
    done;
    prev.(lb)
  end

let nearest name candidates =
  let budget = max 2 (String.length name / 3) in
  let best =
    List.fold_left
      (fun acc c ->
        let d = edit_distance name c in
        match acc with
        | Some (_, bd) when bd <= d -> acc
        | _ when d <= budget -> Some (c, d)
        | _ -> acc)
      None candidates
  in
  Option.map fst best

let did_you_mean name candidates =
  Option.map (Printf.sprintf "did you mean %S?") (nearest name candidates)
