(* Process memory accounting, read from the kernel's procfs. Linux
   exposes the resident-set high-water mark as the "VmHWM" line and the
   current resident set as "VmRSS" in /proc/self/status (both in kB);
   system-wide reclaimable memory is "MemAvailable" in /proc/meminfo. On
   systems without procfs every reader degrades to 0 rather than
   failing, so bench artifacts stay writable everywhere and a zero field
   means "not measured" by convention. *)

let parse_kb line =
  (* "VmHWM:     12345 kB" -> 12345 *)
  let n = String.length line in
  let rec skip i = if i < n && not ('0' <= line.[i] && line.[i] <= '9') then skip (i + 1) else i in
  let start = skip 0 in
  let rec take i acc =
    if i < n && '0' <= line.[i] && line.[i] <= '9' then
      take (i + 1) ((acc * 10) + (Char.code line.[i] - Char.code '0'))
    else acc
  in
  if start >= n then 0 else take start 0

let scan_kb_field path field =
  match open_in path with
  | exception Sys_error _ -> 0
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let pfx = field ^ ":" in
        let pn = String.length pfx in
        let rec scan () =
          match input_line ic with
          | line ->
            if String.length line >= pn && String.sub line 0 pn = pfx then parse_kb line * 1024
            else scan ()
          | exception End_of_file -> 0
        in
        scan ())

let peak_rss_bytes () = scan_kb_field "/proc/self/status" "VmHWM"

let current_rss_bytes () = scan_kb_field "/proc/self/status" "VmRSS"

let available_bytes () = scan_kb_field "/proc/meminfo" "MemAvailable"

(* GC-side memory accounting, to pair with the kernel-side RSS readers:
   RSS says what the OS charges us, these say what the OCaml heap is
   actually doing — the gap is fragmentation plus malloc'd C memory. *)

let gc_heap_words () = (Gc.quick_stat ()).Gc.heap_words

(* Total words ever allocated, minor + direct-to-major, promotions
   excluded (they would double count). Monotone; differences bound the
   allocation cost of a phase or iteration. *)
let gc_allocated_words () =
  let s = Gc.quick_stat () in
  s.Gc.minor_words +. s.Gc.major_words -. s.Gc.promoted_words
