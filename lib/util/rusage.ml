(* Peak resident-set size, read from the kernel's per-process
   accounting. Linux exposes the high-water mark as the "VmHWM" line of
   /proc/self/status (in kB); on systems without procfs the reader
   degrades to 0 rather than failing, so bench artifacts stay writable
   everywhere and a zero field means "not measured" by convention. *)

let parse_kb line =
  (* "VmHWM:     12345 kB" -> 12345 *)
  let n = String.length line in
  let rec skip i = if i < n && not ('0' <= line.[i] && line.[i] <= '9') then skip (i + 1) else i in
  let start = skip 0 in
  let rec take i acc =
    if i < n && '0' <= line.[i] && line.[i] <= '9' then
      take (i + 1) ((acc * 10) + (Char.code line.[i] - Char.code '0'))
    else acc
  in
  if start >= n then 0 else take start 0

let peak_rss_bytes () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> 0
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec scan () =
          match input_line ic with
          | line ->
            if String.length line >= 6 && String.sub line 0 6 = "VmHWM:" then parse_kb line * 1024
            else scan ()
          | exception End_of_file -> 0
        in
        scan ())
