(** Low-overhead streaming tracer with Chrome trace_event export.

    Events (span begin/end, instants, counter samples) are fixed-size
    records written into preallocated per-track ring buffers — three
    array stores and a byte store per event, no allocation, no lock.
    One track per worker domain (track 0 = the submitter/main domain),
    single writer per track, so pool workers trace safely without
    synchronization: the same discipline as [Pool]'s per-worker-flush
    rule for [Obs] counters.

    Overflow policy: without a spill file the ring wraps and the exact
    number of overwritten events is counted ({!dropped}); with
    [~spill:path] a full ring is serialized to disk in one 20-byte-per-
    event binary chunk and reset, making the trace lossless. The spill
    file is an overflow buffer for the live process (interned name
    strings stay in memory), not a standalone archive — export through
    the same tracer.

    {!write_chrome_json} emits Chrome [trace_event] JSON that Perfetto
    ({{:https://ui.perfetto.dev}ui.perfetto.dev}) and chrome://tracing
    open directly; schema and recipe in docs/OBSERVABILITY.md.

    Timestamps come from the monotonic {!Wall_clock.now}, relative to
    tracer creation; {!epoch} carries the single wall-clock anchor for
    correlating the trace with the outside world. *)

type t

(** An interned event name. Resolve once at setup time with {!intern}
    and keep the handle: interning takes a lock, recording does not. *)
type name

(** The shared disabled tracer: every operation is an allocation-free
    no-op, so instrumented code pays one branch when tracing is off. *)
val null : t

(** [create ?capacity ?tracks ?spill ()] makes an enabled tracer with
    [tracks] ring buffers of [capacity] events each (defaults: one
    track, 65536 events ≈ 2.5 MB/track). [?spill] names a binary
    overflow file written in chunks when a ring fills.
    @raise Invalid_argument if [capacity < 2] or [tracks < 1]. *)
val create : ?capacity:int -> ?tracks:int -> ?spill:string -> unit -> t

(** [enabled t] is [false] exactly for {!null}. *)
val enabled : t -> bool

(** [tracks t] is the number of tracks (0 for {!null}). *)
val tracks : t -> int

(** [epoch t] is the wall-clock time at tracer creation (seconds since
    the Unix epoch). *)
val epoch : t -> float

(** [intern t s] returns the id for event name [s], registering it on
    first use. Takes the tracer lock — call at setup, not per event.
    On {!null} returns a dummy id. *)
val intern : t -> string -> name

(** [span_begin t ~track n] / [span_end t ~track n] bracket a timed
    slice on [track]'s timeline lane. Nesting is by position: begins
    and ends pair up LIFO per track. Allocation-free. Out-of-range
    tracks fold onto track 0. *)
val span_begin : t -> track:int -> name -> unit

val span_end : t -> track:int -> name -> unit

(** [instant t ~track ?arg n] marks a point event (default [arg] 0). *)
val instant : t -> track:int -> ?arg:float -> name -> unit

(** [sample t ~track n v] records a counter sample; the exporter
    renders these as Perfetto counter lanes. Allocation-free. *)
val sample : t -> track:int -> name -> float -> unit

(** [recorded t] is the total number of events ever recorded;
    [dropped t] the exact number overwritten before being spilled or
    exported (always 0 when a spill file is configured); [spilled t]
    the number of records written to the spill file so far. *)
val recorded : t -> int

val dropped : t -> int
val spilled : t -> int

(** [spill_path t] is the configured spill file, if any. *)
val spill_path : t -> string option

(** [install_gc_alarm t ~track] registers a [Gc.alarm] emitting a
    ["gc.major"] instant and a ["gc.heap_words"] counter sample at the
    end of every major collection cycle. Idempotent. Remove with
    {!remove_gc_alarm} (also done by {!close}). *)
val install_gc_alarm : t -> track:int -> unit

val remove_gc_alarm : t -> unit

(** [flush t] spills all in-memory residue to the spill file (if any)
    and flushes the channel. Called from the interrupt/checkpoint path
    so a killed run keeps its buffered events. *)
val flush : t -> unit

(** [close t] removes the GC alarm, flushes, and closes the spill
    channel. Safe on {!null} and idempotent. *)
val close : t -> unit

(** [write_chrome_json t path] writes the whole trace as Chrome
    [trace_event] JSON, atomically (tmp+rename). End events whose
    begin was overwritten in a wrapped ring are suppressed to keep
    nesting sound. @raise Invalid_argument on {!null}. *)
val write_chrome_json : t -> string -> unit
