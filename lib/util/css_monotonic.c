/* Monotonic clock stub for Css_util.Wall_clock.
 *
 * CLOCK_MONOTONIC never steps backwards when NTP slews or an operator
 * resets the wall clock, so span timings, budgets and trace timestamps
 * stay meaningful across clock adjustments.  The gettimeofday fallback
 * only exists for platforms without POSIX clocks; on Linux (the target)
 * clock_gettime is always taken.
 *
 * Two entry points per external: the native one returns an unboxed
 * double (allocation-free, [@@noalloc]); the bytecode one boxes.
 */

#include <caml/mlvalues.h>
#include <caml/alloc.h>

#ifdef _WIN32
#include <sys/timeb.h>
#else
#include <time.h>
#include <sys/time.h>
#endif

double css_monotonic_seconds_unboxed(value unit)
{
  (void)unit;
#if !defined(_WIN32) && defined(CLOCK_MONOTONIC)
  struct timespec ts;
  if (clock_gettime(CLOCK_MONOTONIC, &ts) == 0)
    return (double)ts.tv_sec + (double)ts.tv_nsec * 1e-9;
#endif
#ifdef _WIN32
  {
    struct _timeb tb;
    _ftime(&tb);
    return (double)tb.time + (double)tb.millitm * 1e-3;
  }
#else
  {
    struct timeval tv;
    gettimeofday(&tv, NULL);
    return (double)tv.tv_sec + (double)tv.tv_usec * 1e-6;
  }
#endif
}

CAMLprim value css_monotonic_seconds_byte(value unit)
{
  return caml_copy_double(css_monotonic_seconds_unboxed(unit));
}
