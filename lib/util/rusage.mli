(** Process resource usage, for bench artifacts.

    The reader is best-effort: on Linux it parses [/proc/self/status];
    elsewhere it returns 0, which downstream consumers treat as "not
    measured". *)

(** [peak_rss_bytes ()] is the process's peak resident-set size
    (high-water mark) in bytes, or 0 when the platform does not expose
    it. O(lines of /proc/self/status) per call; intended for once-per-run
    sampling, not inner loops. *)
val peak_rss_bytes : unit -> int
