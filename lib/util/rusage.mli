(** Process and system memory accounting, for bench artifacts and
    resource budgets.

    Every reader is best-effort: on Linux it parses procfs; elsewhere it
    returns 0, which downstream consumers treat as "not measured". *)

(** [peak_rss_bytes ()] is the process's peak resident-set size
    (high-water mark) in bytes, or 0 when the platform does not expose
    it. O(lines of /proc/self/status) per call; intended for
    once-per-run sampling, not inner loops. *)
val peak_rss_bytes : unit -> int

(** [current_rss_bytes ()] is the process's current resident-set size in
    bytes (the figure the OOM killer acts on), or 0 when unavailable.
    Same cost as {!peak_rss_bytes}; {!Budget} polls it at iteration and
    phase boundaries only. *)
val current_rss_bytes : unit -> int

(** [available_bytes ()] is the kernel's estimate of memory available to
    new allocations without swapping ([MemAvailable] in
    [/proc/meminfo]), or 0 when unavailable — the probe
    [bench/run.sh --paper] uses to pick a profile that fits the machine
    instead of OOM-killing the runner. *)
val available_bytes : unit -> int

(** [gc_heap_words ()] is the OCaml major heap size in words
    ([Gc.quick_stat]): the GC-side counterpart of
    {!current_rss_bytes} — the gap between the two is fragmentation
    plus C-allocated memory. *)
val gc_heap_words : unit -> int

(** [gc_allocated_words ()] is the total words this process ever
    allocated (minor plus direct-to-major, promotions excluded).
    Monotone; the difference across a phase or iteration is its
    allocation cost, the figure the per-phase GC telemetry reports. *)
val gc_allocated_words : unit -> float
