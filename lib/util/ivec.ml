type t = {
  mutable data : int array;
  mutable len : int;
}

let create ?(capacity = 0) () = { data = Array.make (max capacity 1) 0; len = 0 }

let make n x = { data = Array.make (max n 1) x; len = n }

let[@inline] length v = v.len

let is_empty v = v.len = 0

let check v i name =
  if i < 0 || i >= v.len then
    invalid_arg (Printf.sprintf "Ivec.%s: index %d out of bounds [0,%d)" name i v.len)

let[@inline] get v i =
  check v i "get";
  Array.unsafe_get v.data i

let[@inline] unsafe_get v i = Array.unsafe_get v.data i

let[@inline] set v i x =
  check v i "set";
  Array.unsafe_set v.data i x

let[@inline] unsafe_set v i x = Array.unsafe_set v.data i x

let grow v =
  let cap = Array.length v.data in
  let data' = Array.make (2 * cap) 0 in
  Array.blit v.data 0 data' 0 v.len;
  v.data <- data'

let push v x =
  if v.len = Array.length v.data then grow v;
  Array.unsafe_set v.data v.len x;
  let i = v.len in
  v.len <- v.len + 1;
  i

let pop v =
  if v.len = 0 then invalid_arg "Ivec.pop: empty vector";
  v.len <- v.len - 1;
  Array.unsafe_get v.data v.len

let clear v = v.len <- 0

let iter f v =
  for i = 0 to v.len - 1 do
    f (Array.unsafe_get v.data i)
  done

let iteri f v =
  for i = 0 to v.len - 1 do
    f i (Array.unsafe_get v.data i)
  done

let fold f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc (Array.unsafe_get v.data i)
  done;
  !acc

let to_list v =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (Array.unsafe_get v.data i :: acc) in
  loop (v.len - 1) []

let to_array v = Array.sub v.data 0 v.len

let of_list xs =
  let v = create ~capacity:(List.length xs) () in
  List.iter (fun x -> ignore (push v x)) xs;
  v

let find_index p v =
  let rec loop i =
    if i >= v.len then -1
    else if p (Array.unsafe_get v.data i) then i
    else loop (i + 1)
  in
  loop 0
