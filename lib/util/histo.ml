(* Log-bucketed latency/size histograms.

   Bucketing: 8 sub-buckets per octave (base-2), so every bucket spans
   a ratio of 2^(1/8) ~ 9% and any reported quantile is within ~4.5% of
   the true value. Index 0 collects non-positive observations; indices
   1..n_buckets-1 cover 2^-64 .. 2^64, clamped at both ends — wide
   enough for nanosecond timings and million-node cone sizes alike.

   [observe] is allocation-free (an array store, a flat-float-record
   store and an unboxed [log2]), so instrumented hot loops can observe
   unconditionally; the shared [dummy] sink absorbs observations from
   disabled contexts the way [Obs]'s dummy counter does.

   Merging adds bucket counts and is therefore associative and
   commutative — but the repo's per-worker-flush rule means callers
   merge worker-local histograms in worker-index order anyway, making
   the merged result bit-deterministic (the [sum] field is a float
   accumulation, so order could otherwise matter in the last ulp). *)

let n_buckets = 1025 (* 1 underflow + 128 octaves * 8 sub-buckets *)
let mid = 512 (* bucket of values in [1, 2^(1/8)) *)

(* All-float record => flat representation: field stores don't box. *)
type acc = {
  mutable sum : float;
  mutable mn : float;
  mutable mx : float;
}

type t = {
  counts : int array;
  acc : acc;
  mutable n : int;
}

let create () =
  { counts = Array.make n_buckets 0; acc = { sum = 0.0; mn = infinity; mx = neg_infinity }; n = 0 }

let dummy = create ()

let[@inline] bucket_of v =
  if v <= 0.0 || Float.is_nan v then 0
  else begin
    let i = mid + int_of_float (Float.floor (Float.log2 v *. 8.0)) in
    if i < 1 then 1 else if i >= n_buckets then n_buckets - 1 else i
  end

(* Geometric lower edge / midpoint of bucket [i >= 1]. *)
let bucket_lo i = Float.pow 2.0 (float_of_int (i - mid) /. 8.0)
let bucket_mid i = Float.pow 2.0 ((float_of_int (i - mid) +. 0.5) /. 8.0)

(* [@inline] so [observe_int]'s [float_of_int] feeds straight into the
   bucket math without boxing an intermediate float *)
let[@inline] observe t v =
  let i = bucket_of v in
  t.counts.(i) <- t.counts.(i) + 1;
  t.n <- t.n + 1;
  (* non-finite observations are counted in their bucket (0 for NaN,
     the clamp buckets for infinities) but kept out of the moments: one
     NaN would otherwise poison sum/mean forever, and JSON cannot carry
     non-finite numbers anyway *)
  if Float.is_finite v then begin
    let a = t.acc in
    a.sum <- a.sum +. v;
    if v < a.mn then a.mn <- v;
    if v > a.mx then a.mx <- v
  end

let observe_int t v = observe t (float_of_int v)
let count t = t.n
let sum t = t.acc.sum
let min_value t = if t.n = 0 then 0.0 else t.acc.mn
let max_value t = if t.n = 0 then 0.0 else t.acc.mx
let mean t = if t.n = 0 then 0.0 else t.acc.sum /. float_of_int t.n

let clear t =
  Array.fill t.counts 0 n_buckets 0;
  t.n <- 0;
  t.acc.sum <- 0.0;
  t.acc.mn <- infinity;
  t.acc.mx <- neg_infinity

let quantile t q =
  if t.n = 0 then 0.0
  else begin
    let q = if q < 0.0 then 0.0 else if q > 1.0 then 1.0 else q in
    let target =
      let x = int_of_float (Float.ceil (q *. float_of_int t.n)) in
      if x < 1 then 1 else x
    in
    let rec go i cum =
      if i >= n_buckets then max_value t
      else begin
        let cum = cum + t.counts.(i) in
        if cum >= target then
          if i = 0 then Float.min 0.0 (min_value t)
          else begin
            (* clamp the geometric midpoint into the observed range so a
               single-sample histogram reports the sample itself *)
            let v = bucket_mid i in
            Float.max (min_value t) (Float.min v (max_value t))
          end
        else go (i + 1) cum
      end
    in
    go 0 0
  end

let merge_into ~into src =
  for i = 0 to n_buckets - 1 do
    into.counts.(i) <- into.counts.(i) + src.counts.(i)
  done;
  into.n <- into.n + src.n;
  into.acc.sum <- into.acc.sum +. src.acc.sum;
  if src.acc.mn < into.acc.mn then into.acc.mn <- src.acc.mn;
  if src.acc.mx > into.acc.mx then into.acc.mx <- src.acc.mx

let to_json t =
  let buckets =
    let acc = ref [] in
    for i = n_buckets - 1 downto 0 do
      if t.counts.(i) > 0 then acc := Json.List [ Json.Int i; Json.Int t.counts.(i) ] :: !acc
    done;
    !acc
  in
  Json.Obj
    [
      ("count", Json.Int t.n);
      ("sum", Json.Float t.acc.sum);
      ("min", Json.Float (min_value t));
      ("max", Json.Float (max_value t));
      ("mean", Json.Float (mean t));
      ("p50", Json.Float (quantile t 0.50));
      ("p95", Json.Float (quantile t 0.95));
      ("p99", Json.Float (quantile t 0.99));
      ("buckets", Json.List buckets);
    ]

let of_json j =
  let t = create () in
  let geti name = match Json.member name j with Some (Json.Int i) -> i | _ -> 0 in
  let getf name = match Json.member name j with Some v -> Json.to_float v | None -> 0.0 in
  t.n <- geti "count";
  t.acc.sum <- getf "sum";
  if t.n > 0 then begin
    t.acc.mn <- getf "min";
    t.acc.mx <- getf "max"
  end;
  (match Json.member "buckets" j with
  | Some (Json.List bs) ->
    List.iter
      (function
        | Json.List [ Json.Int i; Json.Int c ] when i >= 0 && i < n_buckets ->
          t.counts.(i) <- t.counts.(i) + c
        | _ -> failwith "Histo.of_json: bad bucket entry")
      bs
  | _ -> ());
  t

let pp_compact t =
  Printf.sprintf "n=%d p50=%.4g p95=%.4g p99=%.4g max=%.4g" t.n (quantile t 0.50)
    (quantile t 0.95) (quantile t 0.99) (max_value t)
