(* Monotonic elapsed-time measurement. The C stub reads
   CLOCK_MONOTONIC, so [now] survives NTP steps; [epoch] is the one
   wall-clock anchor a run records for correlating traces with the
   outside world (logs, CI timestamps). *)

external now : unit -> (float[@unboxed])
  = "css_monotonic_seconds_byte" "css_monotonic_seconds_unboxed"
[@@noalloc]
let epoch () = Unix.gettimeofday ()

let time f =
  let t0 = now () in
  let x = f () in
  (x, now () -. t0)

type t = {
  mutable acc : float;
  mutable started : float option;
}

let create () = { acc = 0.0; started = None }

let start t = t.started <- Some (now ())

let stop t =
  match t.started with
  | None -> invalid_arg "Wall_clock.stop: not started"
  | Some t0 ->
    t.acc <- t.acc +. (now () -. t0);
    t.started <- None

let elapsed t = t.acc
