(** The static timing analyser.

    Maintains min/max arrival times, slews, and early/late required times
    over a {!Graph.t}; answers the queries the clock-skew scheduler needs:

    - endpoint and per-pin slacks (Eq. (1)(2) of the paper);
    - the launch-pin late slack, which is the sequential-graph vertex
      weight [w^out] of Eq. (6), with no extraction;
    - the capture-pin early slack, which is the latency bound [s^E_v] of
      Eq. (11), again with no extraction;
    - fan-in / fan-out cone delay enumeration, the primitive underlying
      all three sequential-graph extraction engines;
    - incremental re-propagation after clock-latency changes or cell
      moves, the paper's "Update" step.

    Hold analysis uses the standard industrial form
    [slack^E = (l_u + c2q_u^early + d^min) - (l_v + hold_v)]; the paper's
    Eq. (1) subtracts the capture c2q as well, which does not affect any
    slack *increment* (Eq. (3)) and hence none of the algorithms. *)

type corner =
  | Early  (** hold / min-delay analysis *)
  | Late  (** setup / max-delay analysis *)

type config = {
  early_derate : float;  (** min-corner delay = derate * max-corner *)
  initial_slew : float;  (** slew at launch pins, ps *)
  port_drive_res : float;  (** drive resistance of input ports *)
  port_cap : float;  (** pin cap of output ports, fF *)
  setup_uncertainty : float;  (** clock uncertainty margin on setup checks, ps *)
  hold_uncertainty : float;  (** clock uncertainty margin on hold checks, ps *)
}

val default_config : config

type stats = {
  mutable full_propagations : int;
  mutable forward_visits : int;  (** node recomputations, fwd *)
  mutable backward_visits : int;  (** node recomputations, bwd *)
  mutable cone_visits : int;  (** nodes touched by cone extraction *)
}

type t

(** [build ?config ?obs design] constructs the graph and runs a full
    propagation. [obs] (default {!Css_util.Obs.null}) receives the
    [timer.*] counters: full/incremental propagations, per-node forward
    and backward recomputations, and cone nodes visited — the paper's
    "Update" cost, reported per iteration by the scheduler. *)
val build : ?config:config -> ?obs:Css_util.Obs.t -> Css_netlist.Design.t -> t

val graph : t -> Graph.t
val design : t -> Css_netlist.Design.t
val config : t -> config
val stats : t -> stats
val obs : t -> Css_util.Obs.t

(** [set_obs t obs] redirects the timer's counters to [obs] (e.g. when a
    flow attaches observability to a timer built elsewhere). Counts
    already accumulated are not transferred. *)
val set_obs : t -> Css_util.Obs.t -> unit

(** {1 Delay-change epochs (cache invalidation)}

    The macromodel cache ({!Css_cache.Macromodel}) needs to know, per
    node, whether any quantity an arc delay depends on (slew, load, pin
    position, library master) has changed since a cone model was taken.
    Clock-latency updates move arrivals and slacks but — by design — no
    stamps, so a latency-only scheduler iteration invalidates nothing. *)

(** [timer_id t] is a process-unique identity, fresh per {!build}. *)
val timer_id : t -> int

(** [delay_gen t] is the current delay-change generation; it advances on
    every [propagate]/incremental-update entry. *)
val delay_gen : t -> int

(** [delay_stamp t n] is the generation of the last delay-relevant
    change at node [n] (0 = never since build). A cone model snapshotted
    at generation [s] is certainly still exact if every member's stamp
    is [<= s]. *)
val delay_stamp : t -> Graph.node -> int

(** {1 Propagation} *)

(** [propagate t] recomputes all arrivals, slews and required times from
    scratch. *)
val propagate : t -> unit

(** [update_latencies t ffs] incrementally re-propagates after the clock
    latencies of [ffs] changed (scheduled or physical, e.g. after
    reconnection). Equivalent to [propagate] but touches only the affected
    cones. *)
val update_latencies : t -> Css_netlist.Design.cell_id list -> unit

(** [update_moved_cells t cells] incrementally re-propagates after the
    placement of [cells] changed. Flip-flops among them also get their
    clock latency refreshed. *)
val update_moved_cells : t -> Css_netlist.Design.cell_id list -> unit

(** [resize_cell t c master] swaps instance [c]'s library master (gate
    sizing), refreshes the affected timing arcs and loads, and
    incrementally re-propagates. Same preconditions as
    [Design.swap_master]. *)
val resize_cell : t -> Css_netlist.Design.cell_id -> string -> unit

(** {1 Node state} *)

(** [arrival t corner n] is the min (Early) or max (Late) arrival time.
    [neg_infinity]/[infinity] when no path reaches [n]. *)
val arrival : t -> corner -> Graph.node -> float

(** [required t corner n] is the required time ([infinity]/[neg_infinity]
    when unconstrained). *)
val required : t -> corner -> Graph.node -> float

(** [slack t corner n] is [required - arrival] for Late and
    [arrival - required] for Early; [infinity] when unconstrained. *)
val slack : t -> corner -> Graph.node -> float

val slew : t -> Graph.node -> float

(** {1 Scheduler-facing queries} *)

val endpoint_slack : t -> corner -> Graph.endpoint -> float

(** [launch_slack t corner l] is the slack at the launch pin of [l]: for
    [Late] this is Eq. (6)'s vertex weight [w^out] (the worst late slack
    over all of [l]'s outgoing timing paths); for [Early] the analogous
    worst early slack over outgoing paths. *)
val launch_slack : t -> corner -> Graph.launcher -> float

(** [launch_latency t l] is the current clock latency of the launcher
    (0 for ports). *)
val launch_latency : t -> Graph.launcher -> float

(** [endpoint_latency t e] is the capture clock latency (0 for ports). *)
val endpoint_latency : t -> Graph.endpoint -> float

(** [edge_slack t corner ~launcher ~endpoint ~delay] evaluates Eq. (1) or
    (2) for a sequential edge given its pure combinational path [delay]
    (launch-pin-to-capture-pin, excluding clk-to-q) under the *current*
    latencies. *)
val edge_slack :
  t -> corner -> launcher:Graph.launcher -> endpoint:Graph.endpoint -> delay:float -> float

val wns : t -> corner -> float
val tns : t -> corner -> float

(** [violated_endpoints t corner] are endpoints with negative slack,
    worst first. *)
val violated_endpoints : t -> corner -> (Graph.endpoint * float) list

(** [arc_delay t corner a] evaluates one timing arc's delay under current
    slews, loads and placement (min-corner delays are derated). *)
val arc_delay : t -> corner -> int -> float

(** {1 Cone enumeration (extraction primitives)} *)

(** [cone_to_endpoint t corner e] walks the fan-in cone of [e] and returns
    every launcher that reaches [e] with its extreme pure path delay (max
    for [Late], min for [Early]), plus the number of graph nodes visited —
    the extraction cost the paper's Table I accounts as "#Extract Edge"
    work. *)
val cone_to_endpoint : t -> corner -> Graph.endpoint -> (Graph.launcher * float) list * int

(** [cone_from_launcher t corner l] is the symmetric fan-out walk used by
    the IC-CSS callback: every endpoint reached from [l] with its extreme
    path delay, plus nodes visited. *)
val cone_from_launcher : t -> corner -> Graph.launcher -> (Graph.endpoint * float) list * int

(** {2 Re-entrant walks (parallel extraction)}

    {!cone_to_endpoint} and {!cone_from_launcher} use the timer's own
    scratch arrays and bump its stats inline, so only one may run at a
    time. The [_in] variants walk through a caller-supplied {!cone_ctx}
    and touch {e no} mutable timer state at all: give each worker domain
    its own context and the walks may run concurrently against the same
    timer, provided nothing mutates the timer (no [propagate], latency
    or placement edits) while they are in flight. Visited-node counts
    are returned, not accounted; the coordinating thread flushes them
    once per round with {!note_cone_visits} (the stats record and [Obs]
    context stay single-writer). *)

(** Private scratch (visit marks + DP values) for one concurrent cone
    walker. *)
type cone_ctx

(** [cone_ctx t] allocates a fresh walker context sized for [t]'s graph.
    Do not share one context between concurrent walkers. *)
val cone_ctx : t -> cone_ctx

(** [cone_to_endpoint_in ctx t corner e] is {!cone_to_endpoint} through
    [ctx], without stats or counter side effects. *)
val cone_to_endpoint_in :
  cone_ctx -> t -> corner -> Graph.endpoint -> (Graph.launcher * float) list * int

(** [cone_from_launcher_in ctx t corner l] is {!cone_from_launcher}
    through [ctx], without stats or counter side effects. *)
val cone_from_launcher_in :
  cone_ctx -> t -> corner -> Graph.launcher -> (Graph.endpoint * float) list * int

(** [cone_nodes_in ctx t corner ~root ~forward] is the raw node-level
    walk underlying both [_in] variants: the reached endpoint (forward)
    or source (backward) nodes with their extreme pure path delays, plus
    the visited-node count. On return, [ctx]'s mark still holds exactly
    the cone's members and [ctx_members]/[ctx_member_count] expose them
    in the DP's level order — the macromodel cache hashes cone content
    from these without a second traversal. *)
val cone_nodes_in :
  cone_ctx -> t -> corner -> root:Graph.node -> forward:bool -> (Graph.node * float) list * int

(** [ctx_members ctx] is [ctx]'s member buffer; only the first
    [ctx_member_count ctx] slots are meaningful, and only until the next
    walk through [ctx]. *)
val ctx_members : cone_ctx -> int array

val ctx_member_count : cone_ctx -> int

(** [ctx_mark ctx] is [ctx]'s visit mark (valid like {!ctx_members});
    callers may also reset and reuse it as member-set scratch between
    walks. *)
val ctx_mark : cone_ctx -> Css_util.Mark.t

(** [note_cone_visits t n] credits [n] cone-visited nodes to
    [t.stats.cone_visits] and the [timer.cone_nodes] counter — the
    deferred accounting for [_in] walks. Call from one thread only. *)
val note_cone_visits : t -> int -> unit

(** {1 Path tracing} *)

(** [worst_path t corner e] is the critical path into [e] as a pin list,
    launch pin first. Empty when no path reaches [e]. *)
val worst_path : t -> corner -> Graph.endpoint -> Css_netlist.Design.pin_id list

(** [k_worst_paths t corner e ~k] enumerates up to [k] distinct paths into
    [e] in criticality order (most negative slack first), each as
    [(slack, pins)] with the launch pin first. [k_worst_paths ~k:1]
    agrees with {!worst_path} and the endpoint slack. Implemented as a
    best-first search over backward path prefixes scored by the exact
    arrival they would realize — no path is materialized unless it is
    among the [k] best. *)
val k_worst_paths :
  t -> corner -> Graph.endpoint -> k:int -> (float * Css_netlist.Design.pin_id list) list
