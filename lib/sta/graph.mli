(** The gate-level timing graph.

    Nodes are *data* pins: combinational cell pins, flip-flop D and Q
    pins, and primary-port pins. The clock network (clock-root port, LCB
    pins, FF CK pins) is deliberately absent — clock latency is computed
    analytically by the design database, which is what lets clock skew
    scheduling change latencies without touching graph topology.

    Arcs are either cell arcs (input pin to output pin of one instance,
    carrying a delay model) or net arcs (driver pin to one sink pin,
    carrying Elmore wire delay evaluated from current placement).

    {b Storage layout.} Nodes and arcs are dense ints; adjacency is
    compressed sparse rows (CSR) in both directions, and per-node
    launcher/endpoint classification is int-encoded (no option cells).
    {!csr_out} and friends expose the raw columns so the timer's
    propagation loops can run without closures or allocation; everything
    they return is owned by the graph and must be treated as read-only.
    See [docs/PERFORMANCE.md].

    Topology is immutable after {!build}: LCB reconnection only rewires
    clock nets, and cell movement only changes arc *delays*. *)

type node = int
(** Dense node index in [0, num_nodes). *)

type launcher =
  | Launch_ff of Css_netlist.Design.cell_id
  | Launch_port of Css_netlist.Design.port_id

type endpoint =
  | End_ff of Css_netlist.Design.cell_id
  | End_port of Css_netlist.Design.port_id

type arc_kind =
  | Cell_arc of Css_liberty.Delay_model.t
  | Net_arc

type t

(** [build design] constructs the graph and its topological order.
    O(pins + arcs).
    @raise Failure if the combinational network contains a cycle. *)
val build : Css_netlist.Design.t -> t

val design : t -> Css_netlist.Design.t
val num_nodes : t -> int
val num_arcs : t -> int

(** [node_of_pin t p] is the node for data pin [p], or [None] for clock
    pins and other excluded pins. O(1); allocates the option. *)
val node_of_pin : t -> Css_netlist.Design.pin_id -> node option

(** [pin_of_node t n] is the design pin behind node [n]. O(1). *)
val pin_of_node : t -> node -> Css_netlist.Design.pin_id

(** [level t n] is the topological level (sources are 0). O(1). *)
val level : t -> node -> int

(** [topo_order t] lists all nodes in a valid topological order. O(1) —
    returns the graph-owned array; do not mutate. *)
val topo_order : t -> node array

(** [iter_out t n f] / [iter_in t n f] visit incident arcs; [f] receives
    the arc id and the neighbour node. O(degree). *)
val iter_out : t -> node -> (int -> node -> unit) -> unit

val iter_in : t -> node -> (int -> node -> unit) -> unit

(** [arc_kind t a] is arc [a]'s delay kind, [0 <= a < num_arcs]. O(1). *)
val arc_kind : t -> int -> arc_kind

(** [refresh_cell_arcs t c] re-reads the delay models of instance [c]'s
    cell arcs from its (possibly swapped) master. Topology must be
    unchanged — guaranteed by [Design.swap_master]'s interface check.
    O(#arcs of [c] * out-degree). *)
val refresh_cell_arcs : t -> Css_netlist.Design.cell_id -> unit

(** [arc_from t a] / [arc_to t a] are arc [a]'s tail and head node. O(1). *)
val arc_from : t -> int -> node

val arc_to : t -> int -> node

(** [sources t] are launch nodes: FF Q pins and input-port pins. O(1) —
    graph-owned array, do not mutate. *)
val sources : t -> node array

(** [endpoints t] are capture nodes: FF D pins and output-port pins.
    O(1) — graph-owned array, do not mutate. *)
val endpoints : t -> node array

(** [launcher_of_node t n] classifies a source node. O(1); allocates the
    returned constructor — hot loops should gate on {!is_source} first.
    @raise Invalid_argument if [n] is not a source. *)
val launcher_of_node : t -> node -> launcher

(** [endpoint_of_node t n] classifies an endpoint node. O(1); allocates
    the returned constructor.
    @raise Invalid_argument if [n] is not an endpoint. *)
val endpoint_of_node : t -> node -> endpoint

(** [is_source t n] / [is_endpoint t n] are single int compares. O(1),
    allocation-free. *)
val is_source : t -> node -> bool

val is_endpoint : t -> node -> bool

(** [source_of_launcher t l] is the launch node of [l] (Q pin or port pin).
    O(#pins of the FF). *)
val source_of_launcher : t -> launcher -> node

(** [node_of_endpoint t e] is the capture node of [e]. O(#pins of the FF). *)
val node_of_endpoint : t -> endpoint -> node

(** [ff_q_node t ff] / [ff_d_node t ff] are the FF's graph nodes.
    O(#pins of [ff]). *)
val ff_q_node : t -> Css_netlist.Design.cell_id -> node

val ff_d_node : t -> Css_netlist.Design.cell_id -> node

(** {1 Raw columns}

    Zero-copy views of the graph's internal arrays, for allocation-free
    inner loops (the timer's propagation and cone walks). All returned
    arrays are graph-owned and read-only; indices follow the CSR
    convention: arcs incident to node [n] occupy [start.(n) ..
    start.(n+1) - 1] of the ids array. Each call is O(1) and allocates
    only the returned pair. *)

(** [node_pins t] is the node-to-design-pin column, indexed by node. *)
val node_pins : t -> Css_netlist.Design.pin_id array

(** [launcher_codes t] / [endpoint_codes t] are the per-node encoded
    launcher/endpoint classifications: [-1] for a plain node,
    [2 * cell_id] for an FF, [2 * port_id + 1] for a port — decode with
    [code land 1] (0 = FF) and [code lsr 1]. The encoding lets the
    timer's source/endpoint handling run without materializing
    {!launcher} / {!endpoint} constructors. *)
val launcher_codes : t -> int array

val endpoint_codes : t -> int array

(** [csr_out t] is [(out_start, out_arc_ids)]. *)
val csr_out : t -> int array * int array

(** [csr_in t] is [(in_start, in_arc_ids)]. *)
val csr_in : t -> int array * int array

(** [arc_tails t] / [arc_heads t] are the per-arc tail/head node columns,
    indexed by arc id. *)
val arc_tails : t -> int array

val arc_heads : t -> int array

(** [arc_kinds t] is the per-arc kind column, indexed by arc id. *)
val arc_kinds : t -> arc_kind array

(** [levels t] is the per-node topological-level column. *)
val levels : t -> int array
