module Design = Css_netlist.Design
module Cell = Css_liberty.Cell
module Library = Css_liberty.Library
module Wire = Css_liberty.Wire
module Delay_model = Css_liberty.Delay_model
module Point = Css_geometry.Point
module Heap = Css_util.Heap
module Mark = Css_util.Mark
module Obs = Css_util.Obs

type corner =
  | Early
  | Late

type config = {
  early_derate : float;
  initial_slew : float;
  port_drive_res : float;
  port_cap : float;
  setup_uncertainty : float;
  hold_uncertainty : float;
}

let default_config =
  {
    early_derate = 0.88;
    initial_slew = 10.0;
    port_drive_res = 1.0;
    port_cap = 2.0;
    setup_uncertainty = 0.0;
    hold_uncertainty = 0.0;
  }

type stats = {
  mutable full_propagations : int;
  mutable forward_visits : int;
  mutable backward_visits : int;
  mutable cone_visits : int;
}

(* Pre-resolved observability counter handles — the hot loops bump these
   without a name lookup; on Obs.null they all alias the dummy cell. *)
type obs_counters = {
  o_full_props : Obs.counter;
  o_incr_updates : Obs.counter;
  o_fwd : Obs.counter;
  o_bwd : Obs.counter;
  o_cone : Obs.counter;
}

let resolve_obs_counters obs =
  {
    o_full_props = Obs.counter obs "timer.full_propagations";
    o_incr_updates = Obs.counter obs "timer.incremental_updates";
    o_fwd = Obs.counter obs "timer.forward_visits";
    o_bwd = Obs.counter obs "timer.backward_visits";
    o_cone = Obs.counter obs "timer.cone_nodes";
  }

type t = {
  graph : Graph.t;
  design : Design.t;
  cfg : config;
  stats : stats;
  mutable obs : Obs.t;
  mutable oc : obs_counters;
  load : float array;  (* per node; meaningful for net drivers *)
  at_max : float array;
  at_min : float array;
  slew : float array;
  pred_max : int array;  (* incoming arc realizing at_max, -1 if none *)
  pred_min : int array;
  rat_late : float array;
  rat_early : float array;
  visit : Mark.t;  (* scratch for cones and worklists *)
  scratch : float array;  (* scratch DP values for cones *)
}

let graph t = t.graph
let design t = t.design
let config t = t.cfg
let stats t = t.stats
let obs t = t.obs

let set_obs t obs =
  t.obs <- obs;
  t.oc <- resolve_obs_counters obs

(* ------------------------------------------------------------------ *)
(* Loads                                                               *)

let sink_cap t pin =
  match Design.pin_owner t.design pin with
  | Design.Cell_pin (c, _) -> (Design.cell_master t.design c).Cell.input_cap
  | Design.Port_pin _ -> t.cfg.port_cap

let refresh_load_of_driver t node =
  let d = t.design in
  let pin = Graph.pin_of_node t.graph node in
  match Design.pin_net d pin with
  | None -> t.load.(node) <- 0.0
  | Some net ->
    let wire = Library.wire (Design.library d) in
    let dpos = Design.pin_pos d pin in
    let total =
      List.fold_left
        (fun acc sink ->
          let len = Point.manhattan dpos (Design.pin_pos d sink) in
          acc +. Wire.cap wire ~len +. sink_cap t sink)
        0.0 (Design.net_sinks d net)
    in
    t.load.(node) <- total

let refresh_all_loads t =
  let g = t.graph in
  for n = 0 to Graph.num_nodes g - 1 do
    let pin = Graph.pin_of_node g n in
    if Design.pin_is_output t.design pin then refresh_load_of_driver t n
  done

(* ------------------------------------------------------------------ *)
(* Arc delays                                                          *)

let driver_res t node =
  let pin = Graph.pin_of_node t.graph node in
  match Design.pin_owner t.design pin with
  | Design.Cell_pin (c, _) -> (Design.cell_master t.design c).Cell.drive_res
  | Design.Port_pin _ -> t.cfg.port_drive_res

let arc_delay_max t a =
  let g = t.graph in
  match Graph.arc_kind g a with
  | Graph.Cell_arc model ->
    let u = Graph.arc_from g a and v = Graph.arc_to g a in
    Delay_model.delay model ~slew:t.slew.(u) ~load:t.load.(v)
  | Graph.Net_arc ->
    let u = Graph.arc_from g a and v = Graph.arc_to g a in
    let d = t.design in
    let len =
      Point.manhattan
        (Design.pin_pos d (Graph.pin_of_node g u))
        (Design.pin_pos d (Graph.pin_of_node g v))
    in
    let wire = Library.wire (Design.library d) in
    Wire.delay wire ~r_drive:(driver_res t u) ~len

let arc_delay t corner a =
  let dmax = arc_delay_max t a in
  match corner with Late -> dmax | Early -> t.cfg.early_derate *. dmax

(* Slew seen at the head of arc [a] when the tail has slew [slew_u]. *)
let arc_out_slew t a ~slew_u ~delay =
  let g = t.graph in
  match Graph.arc_kind g a with
  | Graph.Cell_arc model -> Delay_model.output_slew model ~slew:slew_u ~load:t.load.(Graph.arc_to g a)
  | Graph.Net_arc -> slew_u +. (0.3 *. delay)

(* ------------------------------------------------------------------ *)
(* Source arrivals and endpoint required times                         *)

let ff_params t ff = Cell.ff_params (Design.cell_master t.design ff)

let launch_latency_ff t ff = Design.clock_latency t.design ff

let source_arrivals t node =
  match Graph.launcher_of_node t.graph node with
  | Graph.Launch_port _ -> (0.0, 0.0)
  | Graph.Launch_ff ff ->
    let l = launch_latency_ff t ff in
    let c2q = (ff_params t ff).Cell.clk_to_q in
    (l +. c2q, l +. (t.cfg.early_derate *. c2q))

let endpoint_rats t node =
  let period = Design.clock_period t.design in
  match Graph.endpoint_of_node t.graph node with
  | Graph.End_port _ -> (period -. t.cfg.setup_uncertainty, t.cfg.hold_uncertainty)
  | Graph.End_ff ff ->
    let l = Design.clock_latency t.design ff in
    let p = ff_params t ff in
    ( period +. l -. p.Cell.setup -. t.cfg.setup_uncertainty,
      l +. p.Cell.hold +. t.cfg.hold_uncertainty )

(* ------------------------------------------------------------------ *)
(* Node recomputation                                                  *)

(* Returns true when the forward state of [n] changed. *)
let recompute_forward t n =
  let g = t.graph in
  let old_max = t.at_max.(n) and old_min = t.at_min.(n) and old_slew = t.slew.(n) in
  if Graph.is_source g n then begin
    let amax, amin = source_arrivals t n in
    t.at_max.(n) <- amax;
    t.at_min.(n) <- amin;
    t.slew.(n) <- t.cfg.initial_slew;
    t.pred_max.(n) <- -1;
    t.pred_min.(n) <- -1
  end
  else begin
    let best_max = ref neg_infinity and best_min = ref infinity in
    let arg_max = ref (-1) and arg_min = ref (-1) in
    let best_slew = ref t.cfg.initial_slew in
    Graph.iter_in g n (fun a u ->
        if t.at_max.(u) > neg_infinity then begin
          let dmax = arc_delay_max t a in
          let cand = t.at_max.(u) +. dmax in
          if cand > !best_max then begin
            best_max := cand;
            arg_max := a;
            best_slew := arc_out_slew t a ~slew_u:t.slew.(u) ~delay:dmax
          end
        end;
        if t.at_min.(u) < infinity then begin
          let dmin = arc_delay t Early a in
          let cand = t.at_min.(u) +. dmin in
          if cand < !best_min then begin
            best_min := cand;
            arg_min := a
          end
        end);
    t.at_max.(n) <- !best_max;
    t.at_min.(n) <- !best_min;
    t.slew.(n) <- (if !arg_max >= 0 then !best_slew else t.cfg.initial_slew);
    t.pred_max.(n) <- !arg_max;
    t.pred_min.(n) <- !arg_min
  end;
  t.stats.forward_visits <- t.stats.forward_visits + 1;
  Obs.incr t.oc.o_fwd;
  t.at_max.(n) <> old_max || t.at_min.(n) <> old_min || t.slew.(n) <> old_slew

(* Returns true when the backward state of [n] changed. *)
let recompute_backward t n =
  let g = t.graph in
  let old_late = t.rat_late.(n) and old_early = t.rat_early.(n) in
  let best_late = ref infinity and best_early = ref neg_infinity in
  if Graph.is_endpoint g n then begin
    let late, early = endpoint_rats t n in
    best_late := late;
    best_early := early
  end;
  Graph.iter_out g n (fun a v ->
      if t.rat_late.(v) < infinity then begin
        let cand = t.rat_late.(v) -. arc_delay_max t a in
        if cand < !best_late then best_late := cand
      end;
      if t.rat_early.(v) > neg_infinity then begin
        let cand = t.rat_early.(v) -. arc_delay t Early a in
        if cand > !best_early then best_early := cand
      end);
  t.rat_late.(n) <- !best_late;
  t.rat_early.(n) <- !best_early;
  t.stats.backward_visits <- t.stats.backward_visits + 1;
  Obs.incr t.oc.o_bwd;
  t.rat_late.(n) <> old_late || t.rat_early.(n) <> old_early

(* ------------------------------------------------------------------ *)
(* Full propagation                                                    *)

let propagate t =
  refresh_all_loads t;
  let topo = Graph.topo_order t.graph in
  Array.iter (fun n -> ignore (recompute_forward t n)) topo;
  for i = Array.length topo - 1 downto 0 do
    ignore (recompute_backward t topo.(i))
  done;
  t.stats.full_propagations <- t.stats.full_propagations + 1;
  Obs.incr t.oc.o_full_props

(* ------------------------------------------------------------------ *)
(* Incremental propagation                                             *)

(* Level-ordered worklist sweep. [seeds] are recomputed unconditionally;
   a node whose state changes pushes its neighbours. *)
let sweep t ~seeds ~forward =
  let g = t.graph in
  let dir = if forward then 1 else -1 in
  let heap = Heap.create ~cmp:(fun a b -> compare (dir * Graph.level g a) (dir * Graph.level g b)) in
  Mark.reset t.visit;
  let push n =
    if not (Mark.is_marked t.visit n) then begin
      Mark.mark t.visit n;
      Heap.push heap n
    end
  in
  List.iter push seeds;
  let changed = ref [] in
  while not (Heap.is_empty heap) do
    let n = Heap.pop heap in
    let delta = if forward then recompute_forward t n else recompute_backward t n in
    if delta then begin
      changed := n :: !changed;
      if forward then Graph.iter_out g n (fun _ v -> push v)
      else Graph.iter_in g n (fun _ u -> push u)
    end
  done;
  !changed

let update_after t ~fwd_seeds ~bwd_seeds =
  Obs.incr t.oc.o_incr_updates;
  let changed = sweep t ~seeds:fwd_seeds ~forward:true in
  (* Required times depend on downstream rats *and* on local slews, so
     every node whose forward state changed must be re-examined too. *)
  ignore (sweep t ~seeds:(List.rev_append changed bwd_seeds) ~forward:false)

let update_latencies t ffs =
  let g = t.graph in
  let fwd = List.map (Graph.ff_q_node g) ffs in
  let bwd = List.map (Graph.ff_d_node g) ffs in
  update_after t ~fwd_seeds:fwd ~bwd_seeds:bwd

let update_moved_cells t cells =
  let g = t.graph in
  let d = t.design in
  let fwd = ref [] and bwd = ref [] in
  let add_node lst pin =
    match Graph.node_of_pin g pin with Some n -> lst := n :: !lst | None -> ()
  in
  let touch_net net =
    match Design.net_driver d net with
    | None -> ()
    | Some drv -> (
      match Graph.node_of_pin g drv with
      | None -> () (* clock net *)
      | Some drv_node ->
        refresh_load_of_driver t drv_node;
        add_node fwd drv;
        add_node bwd drv;
        (* the driving cell's input pins see a new cell-arc delay *)
        (match Design.pin_owner d drv with
        | Design.Cell_pin (c, _) ->
          List.iter
            (fun pn -> add_node bwd (Design.cell_pin d c pn))
            (Design.cell_master d c).Cell.inputs
        | Design.Port_pin _ -> ());
        List.iter
          (fun sink ->
            add_node fwd sink;
            add_node bwd sink)
          (Design.net_sinks d net))
  in
  let nets = Hashtbl.create 16 in
  let moved_ffs = ref [] in
  List.iter
    (fun c ->
      if Design.is_ff d c then moved_ffs := c :: !moved_ffs;
      let master = Design.cell_master d c in
      List.iter
        (fun pn ->
          match Design.pin_net d (Design.cell_pin d c pn) with
          | Some net -> Hashtbl.replace nets net ()
          | None -> ())
        (master.Cell.inputs @ master.Cell.outputs))
    cells;
  Hashtbl.iter (fun net () -> touch_net net) nets;
  (* FFs that moved see a different LCB branch length, i.e. latency. *)
  List.iter
    (fun ff ->
      add_node fwd (Design.cell_pin d ff "Q");
      add_node bwd (Design.cell_pin d ff "D"))
    !moved_ffs;
  update_after t ~fwd_seeds:!fwd ~bwd_seeds:!bwd

let resize_cell t c master =
  Design.swap_master t.design c master;
  Graph.refresh_cell_arcs t.graph c;
  (* the same cones as a placement change are affected: incident net
     loads, the cell's own arcs, and everything downstream *)
  update_moved_cells t [ c ]

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)

let arrival t corner n = match corner with Late -> t.at_max.(n) | Early -> t.at_min.(n)

let required t corner n = match corner with Late -> t.rat_late.(n) | Early -> t.rat_early.(n)

let slack t corner n =
  match corner with
  | Late ->
    if t.at_max.(n) = neg_infinity || t.rat_late.(n) = infinity then infinity
    else t.rat_late.(n) -. t.at_max.(n)
  | Early ->
    if t.at_min.(n) = infinity || t.rat_early.(n) = neg_infinity then infinity
    else t.at_min.(n) -. t.rat_early.(n)

let slew t n = t.slew.(n)

let endpoint_slack t corner e = slack t corner (Graph.node_of_endpoint t.graph e)

let launch_slack t corner l = slack t corner (Graph.source_of_launcher t.graph l)

let launch_latency t = function
  | Graph.Launch_ff ff -> launch_latency_ff t ff
  | Graph.Launch_port _ -> 0.0

let endpoint_latency t = function
  | Graph.End_ff ff -> Design.clock_latency t.design ff
  | Graph.End_port _ -> 0.0

let edge_slack t corner ~launcher ~endpoint ~delay =
  let period = Design.clock_period t.design in
  let l_u = launch_latency t launcher in
  let c2q =
    match launcher with
    | Graph.Launch_ff ff -> (ff_params t ff).Cell.clk_to_q
    | Graph.Launch_port _ -> 0.0
  in
  let l_v = endpoint_latency t endpoint in
  match corner with
  | Late ->
    let setup =
      match endpoint with
      | Graph.End_ff ff -> (ff_params t ff).Cell.setup
      | Graph.End_port _ -> 0.0
    in
    period +. l_v -. setup -. t.cfg.setup_uncertainty -. (l_u +. c2q +. delay)
  | Early ->
    let hold =
      match endpoint with
      | Graph.End_ff ff -> (ff_params t ff).Cell.hold
      | Graph.End_port _ -> 0.0
    in
    l_u +. (t.cfg.early_derate *. c2q) +. delay -. (l_v +. hold +. t.cfg.hold_uncertainty)

let fold_endpoints t corner f acc =
  Array.fold_left
    (fun acc n ->
      let s = slack t corner n in
      f acc (Graph.endpoint_of_node t.graph n) s)
    acc (Graph.endpoints t.graph)

let wns t corner =
  fold_endpoints t corner (fun acc _ s -> if s < acc then s else acc) 0.0

let tns t corner = fold_endpoints t corner (fun acc _ s -> if s < 0.0 then acc +. s else acc) 0.0

let violated_endpoints t corner =
  let vs = fold_endpoints t corner (fun acc e s -> if s < 0.0 then (e, s) :: acc else acc) [] in
  List.sort (fun (_, a) (_, b) -> compare a b) vs

(* ------------------------------------------------------------------ *)
(* Cone enumeration                                                    *)

(* Per-walk scratch: an epoch mark plus a DP value per node. The timer
   owns one (t.visit / t.scratch) for its own sequential walks; parallel
   extraction hands each worker domain a private [cone_ctx] so walks
   share nothing but the read-only graph and delay arrays. *)
type cone_ctx = { cw_visit : Mark.t; cw_scratch : float array }

let cone_ctx t =
  let n = max (Graph.num_nodes t.graph) 1 in
  { cw_visit = Mark.create n; cw_scratch = Array.make n 0.0 }

let note_cone_visits t n =
  t.stats.cone_visits <- t.stats.cone_visits + n;
  Obs.add t.oc.o_cone n

(* Collect the cone of [root] (backward when [forward = false]) as node
   ids, then run a longest/shortest-path DP restricted to the cone.
   Touches only [ctx] and read-only timer state — no stats, no Obs —
   so it is safe to run from worker domains; callers account visits
   via [note_cone_visits] afterwards (single-writer). *)
let cone_in ctx t corner ~root ~forward =
  let g = t.graph in
  let visit = ctx.cw_visit and scratch = ctx.cw_scratch in
  Mark.reset visit;
  let members = ref [] in
  let count = ref 0 in
  let rec collect n =
    if not (Mark.is_marked visit n) then begin
      Mark.mark visit n;
      incr count;
      members := n :: !members;
      if forward then begin
        if not (Graph.is_endpoint g n) then Graph.iter_out g n (fun _ v -> collect v)
      end
      else if not (Graph.is_source g n) then Graph.iter_in g n (fun _ u -> collect u)
    end
  in
  collect root;
  let members = Array.of_list !members in
  (* DP in level order: ascending when walking backward from the root so
     that successors-in-cone are final (we relax over out-arcs), and
     descending for the forward cone (we relax over in-arcs). *)
  Array.sort
    (fun a b ->
      if forward then compare (Graph.level g a) (Graph.level g b)
      else compare (Graph.level g b) (Graph.level g a))
    members;
  let better a b = match corner with Late -> a > b | Early -> a < b in
  let worst = match corner with Late -> neg_infinity | Early -> infinity in
  Array.iter (fun n -> scratch.(n) <- worst) members;
  scratch.(root) <- 0.0;
  let results = ref [] in
  Array.iter
    (fun n ->
      if n <> root then begin
        let best = ref worst in
        if forward then
          Graph.iter_in g n (fun a u ->
              if Mark.is_marked visit u && scratch.(u) <> worst then begin
                let cand = scratch.(u) +. arc_delay t corner a in
                if better cand !best then best := cand
              end)
        else
          Graph.iter_out g n (fun a v ->
              if Mark.is_marked visit v && scratch.(v) <> worst then begin
                let cand = arc_delay t corner a +. scratch.(v) in
                if better cand !best then best := cand
              end);
        scratch.(n) <- !best
      end;
      if scratch.(n) <> worst then
        if forward then begin
          if Graph.is_endpoint g n && n <> root then
            results := (n, scratch.(n)) :: !results
        end
        else if Graph.is_source g n && n <> root then results := (n, scratch.(n)) :: !results)
    members;
  (!results, !count)

let cone t corner ~root ~forward =
  let ctx = { cw_visit = t.visit; cw_scratch = t.scratch } in
  let results, count = cone_in ctx t corner ~root ~forward in
  note_cone_visits t count;
  (results, count)

let cone_to_endpoint_in ctx t corner e =
  let root = Graph.node_of_endpoint t.graph e in
  let raw, visited = cone_in ctx t corner ~root ~forward:false in
  (List.map (fun (n, d) -> (Graph.launcher_of_node t.graph n, d)) raw, visited)

let cone_from_launcher_in ctx t corner l =
  let root = Graph.source_of_launcher t.graph l in
  let raw, visited = cone_in ctx t corner ~root ~forward:true in
  (List.map (fun (n, d) -> (Graph.endpoint_of_node t.graph n, d)) raw, visited)

let cone_to_endpoint t corner e =
  let root = Graph.node_of_endpoint t.graph e in
  let raw, visited = cone t corner ~root ~forward:false in
  (List.map (fun (n, d) -> (Graph.launcher_of_node t.graph n, d)) raw, visited)

let cone_from_launcher t corner l =
  let root = Graph.source_of_launcher t.graph l in
  let raw, visited = cone t corner ~root ~forward:true in
  (List.map (fun (n, d) -> (Graph.endpoint_of_node t.graph n, d)) raw, visited)

(* ------------------------------------------------------------------ *)
(* Path tracing                                                        *)

let worst_path t corner e =
  let g = t.graph in
  let pred = match corner with Late -> t.pred_max | Early -> t.pred_min in
  let rec walk n acc =
    let acc = Graph.pin_of_node g n :: acc in
    let a = pred.(n) in
    if a < 0 then acc else walk (Graph.arc_from g a) acc
  in
  let n = Graph.node_of_endpoint g e in
  if arrival t corner n = neg_infinity || arrival t corner n = infinity then []
  else walk n []

(* Best-first enumeration of the k most critical paths into an endpoint.
   A queue item is a backward prefix from the endpoint to [node] with
   accumulated suffix delay [acc]; its score [arrival(node) + acc] is the
   exact arrival the best completion of this prefix realizes, so items
   pop in true criticality order and each source pop is a final path. *)
let k_worst_paths t corner e ~k =
  if k <= 0 then []
  else begin
    let g = t.graph in
    let root = Graph.node_of_endpoint g e in
    let arrival_of n = match corner with Late -> t.at_max.(n) | Early -> t.at_min.(n) in
    let unreachable n =
      match corner with Late -> t.at_max.(n) = neg_infinity | Early -> t.at_min.(n) = infinity
    in
    if unreachable root then []
    else begin
      (* pop the largest arrival first for Late, smallest for Early *)
      let cmp (s1, _, _, _) (s2, _, _, _) =
        match corner with Late -> compare s2 s1 | Early -> compare s1 s2
      in
      let heap = Heap.create ~cmp in
      (* (score, node, suffix delay, suffix node list including node) *)
      Heap.push heap (arrival_of root, root, 0.0, [ root ]);
      let results = ref [] in
      let count = ref 0 in
      let slack_of_arrival arr =
        match corner with
        | Late -> t.rat_late.(root) -. arr
        | Early -> arr -. t.rat_early.(root)
      in
      while !count < k && not (Heap.is_empty heap) do
        let _, node, acc, suffix = Heap.pop heap in
        if Graph.is_source g node then begin
          incr count;
          let arr = arrival_of node +. acc in
          results := (slack_of_arrival arr, List.map (Graph.pin_of_node g) suffix) :: !results
        end
        else
          Graph.iter_in g node (fun a u ->
              if not (unreachable u) then begin
                let d = arc_delay t corner a in
                Heap.push heap (arrival_of u +. d +. acc, u, acc +. d, u :: suffix)
              end)
      done;
      List.rev !results
    end
  end

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)

let build ?(config = default_config) ?(obs = Obs.null) design =
  let graph = Graph.build design in
  let n = Graph.num_nodes graph in
  let t =
    {
      graph;
      design;
      cfg = config;
      stats =
        { full_propagations = 0; forward_visits = 0; backward_visits = 0; cone_visits = 0 };
      obs;
      oc = resolve_obs_counters obs;
      load = Array.make (max n 1) 0.0;
      at_max = Array.make (max n 1) neg_infinity;
      at_min = Array.make (max n 1) infinity;
      slew = Array.make (max n 1) config.initial_slew;
      pred_max = Array.make (max n 1) (-1);
      pred_min = Array.make (max n 1) (-1);
      rat_late = Array.make (max n 1) infinity;
      rat_early = Array.make (max n 1) neg_infinity;
      visit = Mark.create (max n 1);
      scratch = Array.make (max n 1) 0.0;
    }
  in
  propagate t;
  t
