module Design = Css_netlist.Design
module Cell = Css_liberty.Cell
module Library = Css_liberty.Library
module Wire = Css_liberty.Wire
module Delay_model = Css_liberty.Delay_model
module Heap = Css_util.Heap
module Mark = Css_util.Mark
module Obs = Css_util.Obs

type corner =
  | Early
  | Late

type config = {
  early_derate : float;
  initial_slew : float;
  port_drive_res : float;
  port_cap : float;
  setup_uncertainty : float;
  hold_uncertainty : float;
}

let default_config =
  {
    early_derate = 0.88;
    initial_slew = 10.0;
    port_drive_res = 1.0;
    port_cap = 2.0;
    setup_uncertainty = 0.0;
    hold_uncertainty = 0.0;
  }

type stats = {
  mutable full_propagations : int;
  mutable forward_visits : int;
  mutable backward_visits : int;
  mutable cone_visits : int;
}

(* Pre-resolved observability counter handles — the hot loops bump these
   without a name lookup; on Obs.null they all alias the dummy cell. *)
type obs_counters = {
  o_full_props : Obs.counter;
  o_incr_updates : Obs.counter;
  o_fwd : Obs.counter;
  o_bwd : Obs.counter;
  o_cone : Obs.counter;
  (* Touched-node count per incremental update: the distribution behind
     the "re-propagate only affected cones" claim. *)
  h_update : Css_util.Histo.t;
}

let resolve_obs_counters obs =
  {
    o_full_props = Obs.counter obs "timer.full_propagations";
    o_incr_updates = Obs.counter obs "timer.incremental_updates";
    o_fwd = Obs.counter obs "timer.forward_visits";
    o_bwd = Obs.counter obs "timer.backward_visits";
    o_cone = Obs.counter obs "timer.cone_nodes";
    h_update = Obs.histogram obs "timer.update_nodes";
  }

(* All-float scratch record. OCaml lays an all-float record out flat, so
   writing a field is a plain store: the propagation loops accumulate
   their running extrema here instead of in [float ref]s, which would
   allocate one cell per node visit. *)
type fscratch = {
  mutable s_best_max : float;
  mutable s_best_min : float;
  mutable s_best_slew : float;
  mutable s_acc : float;
}

(* Per-walk scratch: an epoch mark, a DP value per node, and a member
   buffer sized for the whole graph. The timer owns one ([t.own_ctx])
   for its sequential walks; parallel extraction hands each worker
   domain a private [cone_ctx] so walks share nothing but the read-only
   graph and delay arrays. *)
type cone_ctx = {
  cw_visit : Mark.t;
  cw_scratch : float array;
  cw_members : int array;
  mutable cw_count : int;
  mutable cw_acc : float;  (* DP accumulator — must be per-worker, not on [t] *)
}

type t = {
  graph : Graph.t;
  design : Design.t;
  cfg : config;
  stats : stats;
  mutable obs : Obs.t;
  mutable oc : obs_counters;
  load : float array;  (* per node; meaningful for net drivers *)
  at_max : float array;
  at_min : float array;
  slew : float array;
  pred_max : int array;  (* incoming arc realizing at_max, -1 if none *)
  pred_min : int array;
  rat_late : float array;
  rat_early : float array;
  (* Delay-change epochs, the cache-invalidation substrate: [delay_gen]
     advances at every update entry point, and [stamp.(n)] records the
     generation of the last change at [n] that can move an arc delay
     (slew, load, pin position, master). Latency-only updates move
     arrivals but no stamps — that asymmetry is what lets a cone
     macromodel survive the scheduler's latency iterations. *)
  stamp : int array;
  mutable delay_gen : int;
  t_id : int;  (* process-unique: cache entries bound to a timer *)
  visit : Mark.t;  (* scratch for incremental worklists *)
  own_ctx : cone_ctx;  (* the timer's own sequential cone walker *)
  (* graph columns cached at build — the propagation loops index these
     directly instead of going through closures (see Graph raw columns) *)
  g_node_pin : int array;
  g_out_start : int array;
  g_out_arcs : int array;
  g_in_start : int array;
  g_in_arcs : int array;
  g_tails : int array;
  g_heads : int array;
  g_kinds : Graph.arc_kind array;  (* aliases the graph's column: stays
                                      fresh across [refresh_cell_arcs] *)
  g_levels : int array;
  g_launch : int array;  (* encoded launchers, -1 = not a source *)
  g_end : int array;  (* encoded endpoints, -1 = not an endpoint *)
  wire_r : float;  (* Wire r_unit, inlined Elmore math *)
  wire_c : float;  (* Wire c_unit *)
  fscr : fscratch;
}

let graph t = t.graph
let design t = t.design
let config t = t.cfg
let stats t = t.stats
let obs t = t.obs

let set_obs t obs =
  t.obs <- obs;
  t.oc <- resolve_obs_counters obs

let timer_id t = t.t_id
let delay_gen t = t.delay_gen
let delay_stamp t n = t.stamp.(n)
let bump_gen t = t.delay_gen <- t.delay_gen + 1

(* ------------------------------------------------------------------ *)
(* Loads                                                               *)

let sink_cap t pin =
  let c = Design.pin_cell_id t.design pin in
  if c >= 0 then (Design.cell_master t.design c).Cell.input_cap else t.cfg.port_cap

let refresh_load_of_driver t node =
  let d = t.design in
  let pin = Array.unsafe_get t.g_node_pin node in
  let net = Design.pin_net_id d pin in
  let old_load = Array.unsafe_get t.load node in
  if net < 0 then t.load.(node) <- 0.0
  else begin
    let px = Design.pin_x d pin and py = Design.pin_y d pin in
    let fs = t.fscr in
    fs.s_acc <- 0.0;
    for i = 0 to Design.net_fanout d net - 1 do
      let sink = Design.net_sink d net i in
      let len = Float.abs (px -. Design.pin_x d sink) +. Float.abs (py -. Design.pin_y d sink) in
      let wcap = if len <= 0.0 then 0.0 else t.wire_c *. len in
      fs.s_acc <- fs.s_acc +. wcap +. sink_cap t sink
    done;
    t.load.(node) <- fs.s_acc
  end;
  (* a new load moves the delay of every cell arc into this node *)
  if Array.unsafe_get t.load node <> old_load then Array.unsafe_set t.stamp node t.delay_gen

let refresh_all_loads t =
  let d = t.design in
  for n = 0 to Array.length t.g_node_pin - 1 do
    if Design.pin_is_output d (Array.unsafe_get t.g_node_pin n) then refresh_load_of_driver t n
  done

(* ------------------------------------------------------------------ *)
(* Arc delays                                                          *)

let driver_res t node =
  let c = Design.pin_cell_id t.design (Array.unsafe_get t.g_node_pin node) in
  if c >= 0 then (Design.cell_master t.design c).Cell.drive_res else t.cfg.port_drive_res

(* Evaluates one arc's max-corner delay with the Linear cell model and
   the Elmore wire formula inlined (both produce the same floats as the
   Delay_model / Wire entry points, which box their results when called
   across module boundaries). *)
let arc_delay_max t a =
  match Array.unsafe_get t.g_kinds a with
  | Graph.Cell_arc model -> (
    let u = Array.unsafe_get t.g_tails a and v = Array.unsafe_get t.g_heads a in
    let slew = Array.unsafe_get t.slew u and load = Array.unsafe_get t.load v in
    match model with
    | Delay_model.Linear { intrinsic; resistance; slew_impact } ->
      intrinsic +. (resistance *. load) +. (slew_impact *. slew)
    | Delay_model.Lut _ -> Delay_model.delay model ~slew ~load)
  | Graph.Net_arc ->
    let u = Array.unsafe_get t.g_tails a and v = Array.unsafe_get t.g_heads a in
    let d = t.design in
    let pu = Array.unsafe_get t.g_node_pin u and pv = Array.unsafe_get t.g_node_pin v in
    let len =
      Float.abs (Design.pin_x d pu -. Design.pin_x d pv)
      +. Float.abs (Design.pin_y d pu -. Design.pin_y d pv)
    in
    if len <= 0.0 then 0.0
    else (driver_res t u *. t.wire_c *. len) +. (t.wire_r *. t.wire_c *. len *. len /. 2.0)

let arc_delay t corner a =
  let dmax = arc_delay_max t a in
  match corner with Late -> dmax | Early -> t.cfg.early_derate *. dmax

(* Slew seen at the head of arc [a] when the tail has slew [slew_u] and
   the arc's max delay is [delay]. For cell arcs Delay_model.output_slew
   recomputes exactly the delay the caller just evaluated, so
   [0.4 *. delay] with the 2.0 floor is the same float without the
   second model evaluation. *)
let arc_out_slew t a ~slew_u ~delay =
  match Array.unsafe_get t.g_kinds a with
  | Graph.Cell_arc _ -> Float.max 2.0 (0.4 *. delay)
  | Graph.Net_arc -> slew_u +. (0.3 *. delay)

(* ------------------------------------------------------------------ *)
(* Source arrivals and endpoint required times                         *)

let ff_params t ff = Cell.ff_params (Design.cell_master t.design ff)

let launch_latency_ff t ff = Design.clock_latency t.design ff

(* Writes (at_max, at_min) of a source node into (s_best_max, s_best_min)
   of the scratch record — tuple-free for the forward sweep. *)
let source_arrivals_into t node =
  let fs = t.fscr in
  let enc = Array.unsafe_get t.g_launch node in
  if enc land 1 = 1 then begin
    (* port *)
    fs.s_best_max <- 0.0;
    fs.s_best_min <- 0.0
  end
  else begin
    let ff = enc lsr 1 in
    let l = launch_latency_ff t ff in
    let c2q = (ff_params t ff).Cell.clk_to_q in
    fs.s_best_max <- l +. c2q;
    fs.s_best_min <- l +. (t.cfg.early_derate *. c2q)
  end

(* Writes (rat_late, rat_early) of an endpoint into (s_best_min,
   s_best_max) — the backward sweep minimizes late rats and maximizes
   early rats, matching the scratch roles there. *)
let endpoint_rats_into t node =
  let fs = t.fscr in
  let period = Design.clock_period t.design in
  let enc = Array.unsafe_get t.g_end node in
  if enc land 1 = 1 then begin
    fs.s_best_min <- period -. t.cfg.setup_uncertainty;
    fs.s_best_max <- t.cfg.hold_uncertainty
  end
  else begin
    let ff = enc lsr 1 in
    let l = Design.clock_latency t.design ff in
    let p = ff_params t ff in
    fs.s_best_min <- period +. l -. p.Cell.setup -. t.cfg.setup_uncertainty;
    fs.s_best_max <- l +. p.Cell.hold +. t.cfg.hold_uncertainty
  end

(* ------------------------------------------------------------------ *)
(* Node recomputation                                                  *)

(* Returns true when the forward state of [n] changed. The relaxation
   runs over the cached in-CSR with extrema in the flat scratch record:
   no closures, refs or boxed floats per node. *)
let recompute_forward t n =
  let old_max = Array.unsafe_get t.at_max n
  and old_min = Array.unsafe_get t.at_min n
  and old_slew = Array.unsafe_get t.slew n in
  if Array.unsafe_get t.g_launch n >= 0 then begin
    source_arrivals_into t n;
    Array.unsafe_set t.at_max n t.fscr.s_best_max;
    Array.unsafe_set t.at_min n t.fscr.s_best_min;
    Array.unsafe_set t.slew n t.cfg.initial_slew;
    Array.unsafe_set t.pred_max n (-1);
    Array.unsafe_set t.pred_min n (-1)
  end
  else begin
    let fs = t.fscr in
    fs.s_best_max <- neg_infinity;
    fs.s_best_min <- infinity;
    fs.s_best_slew <- t.cfg.initial_slew;
    let arg_max = ref (-1) and arg_min = ref (-1) in
    let istart = t.g_in_start and iarcs = t.g_in_arcs and tails = t.g_tails in
    let at_max = t.at_max and at_min = t.at_min and slews = t.slew in
    let derate = t.cfg.early_derate in
    for i = Array.unsafe_get istart n to Array.unsafe_get istart (n + 1) - 1 do
      let a = Array.unsafe_get iarcs i in
      let u = Array.unsafe_get tails a in
      let amu = Array.unsafe_get at_max u in
      if amu > neg_infinity then begin
        let dmax = arc_delay_max t a in
        let cand = amu +. dmax in
        if cand > fs.s_best_max then begin
          fs.s_best_max <- cand;
          arg_max := a;
          fs.s_best_slew <- arc_out_slew t a ~slew_u:(Array.unsafe_get slews u) ~delay:dmax
        end
      end;
      let anu = Array.unsafe_get at_min u in
      if anu < infinity then begin
        let cand = anu +. (derate *. arc_delay_max t a) in
        if cand < fs.s_best_min then begin
          fs.s_best_min <- cand;
          arg_min := a
        end
      end
    done;
    Array.unsafe_set at_max n fs.s_best_max;
    Array.unsafe_set at_min n fs.s_best_min;
    Array.unsafe_set slews n (if !arg_max >= 0 then fs.s_best_slew else t.cfg.initial_slew);
    Array.unsafe_set t.pred_max n !arg_max;
    Array.unsafe_set t.pred_min n !arg_min
  end;
  t.stats.forward_visits <- t.stats.forward_visits + 1;
  Obs.incr t.oc.o_fwd;
  (* a slew change moves downstream cell-arc delays; arrival changes
     alone do not, so latency sweeps leave the stamps untouched unless
     they flip an arg-max onto an arc with a different output slew *)
  if Array.unsafe_get t.slew n <> old_slew then Array.unsafe_set t.stamp n t.delay_gen;
  Array.unsafe_get t.at_max n <> old_max
  || Array.unsafe_get t.at_min n <> old_min
  || Array.unsafe_get t.slew n <> old_slew

(* Returns true when the backward state of [n] changed. *)
let recompute_backward t n =
  let old_late = Array.unsafe_get t.rat_late n and old_early = Array.unsafe_get t.rat_early n in
  let fs = t.fscr in
  if Array.unsafe_get t.g_end n >= 0 then endpoint_rats_into t n
  else begin
    fs.s_best_min <- infinity;
    fs.s_best_max <- neg_infinity
  end;
  let ostart = t.g_out_start and oarcs = t.g_out_arcs and heads = t.g_heads in
  let rat_late = t.rat_late and rat_early = t.rat_early in
  let derate = t.cfg.early_derate in
  for i = Array.unsafe_get ostart n to Array.unsafe_get ostart (n + 1) - 1 do
    let a = Array.unsafe_get oarcs i in
    let v = Array.unsafe_get heads a in
    let rl = Array.unsafe_get rat_late v in
    if rl < infinity then begin
      let cand = rl -. arc_delay_max t a in
      if cand < fs.s_best_min then fs.s_best_min <- cand
    end;
    let re = Array.unsafe_get rat_early v in
    if re > neg_infinity then begin
      let cand = re -. (derate *. arc_delay_max t a) in
      if cand > fs.s_best_max then fs.s_best_max <- cand
    end
  done;
  Array.unsafe_set rat_late n fs.s_best_min;
  Array.unsafe_set rat_early n fs.s_best_max;
  t.stats.backward_visits <- t.stats.backward_visits + 1;
  Obs.incr t.oc.o_bwd;
  Array.unsafe_get rat_late n <> old_late || Array.unsafe_get rat_early n <> old_early

(* ------------------------------------------------------------------ *)
(* Full propagation                                                    *)

let propagate t =
  bump_gen t;
  refresh_all_loads t;
  let topo = Graph.topo_order t.graph in
  for i = 0 to Array.length topo - 1 do
    ignore (recompute_forward t (Array.unsafe_get topo i))
  done;
  for i = Array.length topo - 1 downto 0 do
    ignore (recompute_backward t (Array.unsafe_get topo i))
  done;
  t.stats.full_propagations <- t.stats.full_propagations + 1;
  Obs.incr t.oc.o_full_props

(* ------------------------------------------------------------------ *)
(* Incremental propagation                                             *)

(* Level-ordered worklist sweep. [seeds] are recomputed unconditionally;
   a node whose state changes pushes its neighbours. *)
let sweep t ~seeds ~forward =
  let g = t.graph in
  let dir = if forward then 1 else -1 in
  let heap = Heap.create ~cmp:(fun a b -> compare (dir * Graph.level g a) (dir * Graph.level g b)) in
  Mark.reset t.visit;
  let push n =
    if not (Mark.is_marked t.visit n) then begin
      Mark.mark t.visit n;
      Heap.push heap n
    end
  in
  List.iter push seeds;
  let changed = ref [] in
  while not (Heap.is_empty heap) do
    let n = Heap.pop heap in
    let delta = if forward then recompute_forward t n else recompute_backward t n in
    if delta then begin
      changed := n :: !changed;
      if forward then Graph.iter_out g n (fun _ v -> push v)
      else Graph.iter_in g n (fun _ u -> push u)
    end
  done;
  !changed

let update_after t ~fwd_seeds ~bwd_seeds =
  bump_gen t;
  Obs.incr t.oc.o_incr_updates;
  let changed = sweep t ~seeds:fwd_seeds ~forward:true in
  (* Required times depend on downstream rats *and* on local slews, so
     every node whose forward state changed must be re-examined too. *)
  let bwd_changed = sweep t ~seeds:(List.rev_append changed bwd_seeds) ~forward:false in
  Css_util.Histo.observe_int t.oc.h_update (List.length changed + List.length bwd_changed)

let update_latencies t ffs =
  let g = t.graph in
  let fwd = List.map (Graph.ff_q_node g) ffs in
  let bwd = List.map (Graph.ff_d_node g) ffs in
  update_after t ~fwd_seeds:fwd ~bwd_seeds:bwd

let update_moved_cells t cells =
  let g = t.graph in
  let d = t.design in
  let fwd = ref [] and bwd = ref [] in
  let add_node lst pin =
    match Graph.node_of_pin g pin with Some n -> lst := n :: !lst | None -> ()
  in
  let touch_net net =
    let drv = Design.net_driver_id d net in
    if drv >= 0 then
      match Graph.node_of_pin g drv with
      | None -> () (* clock net *)
      | Some drv_node ->
        refresh_load_of_driver t drv_node;
        add_node fwd drv;
        add_node bwd drv;
        (* the driving cell's input pins see a new cell-arc delay *)
        let c = Design.pin_cell_id d drv in
        if c >= 0 then
          List.iter
            (fun pn -> add_node bwd (Design.cell_pin d c pn))
            (Design.cell_master d c).Cell.inputs;
        Design.iter_net_sinks d net (fun sink ->
            add_node fwd sink;
            add_node bwd sink)
  in
  (* Placement/master changes move pin positions and Elmore terms the
     value-compare hooks cannot all see, so every seed is stamped
     unconditionally. The bump here (not just in [update_after]) keeps
     these stamps strictly newer than any cache snapshot taken before
     this call. *)
  bump_gen t;
  let nets = Hashtbl.create 16 in
  let moved_ffs = ref [] in
  List.iter
    (fun c ->
      if Design.is_ff d c then moved_ffs := c :: !moved_ffs;
      let master = Design.cell_master d c in
      List.iter
        (fun pn ->
          let net = Design.pin_net_id d (Design.cell_pin d c pn) in
          if net >= 0 then Hashtbl.replace nets net ())
        (master.Cell.inputs @ master.Cell.outputs))
    cells;
  Hashtbl.iter (fun net () -> touch_net net) nets;
  (* FFs that moved see a different LCB branch length, i.e. latency. *)
  List.iter
    (fun ff ->
      add_node fwd (Design.cell_pin d ff "Q");
      add_node bwd (Design.cell_pin d ff "D"))
    !moved_ffs;
  List.iter (fun n -> t.stamp.(n) <- t.delay_gen) !fwd;
  List.iter (fun n -> t.stamp.(n) <- t.delay_gen) !bwd;
  update_after t ~fwd_seeds:!fwd ~bwd_seeds:!bwd

let resize_cell t c master =
  Design.swap_master t.design c master;
  Graph.refresh_cell_arcs t.graph c;
  (* the same cones as a placement change are affected: incident net
     loads, the cell's own arcs, and everything downstream *)
  update_moved_cells t [ c ]

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)

let arrival t corner n = match corner with Late -> t.at_max.(n) | Early -> t.at_min.(n)

let required t corner n = match corner with Late -> t.rat_late.(n) | Early -> t.rat_early.(n)

let slack t corner n =
  match corner with
  | Late ->
    if t.at_max.(n) = neg_infinity || t.rat_late.(n) = infinity then infinity
    else t.rat_late.(n) -. t.at_max.(n)
  | Early ->
    if t.at_min.(n) = infinity || t.rat_early.(n) = neg_infinity then infinity
    else t.at_min.(n) -. t.rat_early.(n)

let slew t n = t.slew.(n)

let endpoint_slack t corner e = slack t corner (Graph.node_of_endpoint t.graph e)

let launch_slack t corner l = slack t corner (Graph.source_of_launcher t.graph l)

let launch_latency t = function
  | Graph.Launch_ff ff -> launch_latency_ff t ff
  | Graph.Launch_port _ -> 0.0

let endpoint_latency t = function
  | Graph.End_ff ff -> Design.clock_latency t.design ff
  | Graph.End_port _ -> 0.0

let edge_slack t corner ~launcher ~endpoint ~delay =
  let period = Design.clock_period t.design in
  let l_u = launch_latency t launcher in
  let c2q =
    match launcher with
    | Graph.Launch_ff ff -> (ff_params t ff).Cell.clk_to_q
    | Graph.Launch_port _ -> 0.0
  in
  let l_v = endpoint_latency t endpoint in
  match corner with
  | Late ->
    let setup =
      match endpoint with
      | Graph.End_ff ff -> (ff_params t ff).Cell.setup
      | Graph.End_port _ -> 0.0
    in
    period +. l_v -. setup -. t.cfg.setup_uncertainty -. (l_u +. c2q +. delay)
  | Early ->
    let hold =
      match endpoint with
      | Graph.End_ff ff -> (ff_params t ff).Cell.hold
      | Graph.End_port _ -> 0.0
    in
    l_u +. (t.cfg.early_derate *. c2q) +. delay -. (l_v +. hold +. t.cfg.hold_uncertainty)

(* wns / tns scan the endpoint array without classifying nodes into
   launcher/endpoint constructors — they run once per scheduler
   iteration over every endpoint. *)
let wns t corner =
  let eps = Graph.endpoints t.graph in
  let fs = t.fscr in
  fs.s_acc <- 0.0;
  for i = 0 to Array.length eps - 1 do
    let s = slack t corner (Array.unsafe_get eps i) in
    if s < fs.s_acc then fs.s_acc <- s
  done;
  fs.s_acc

let tns t corner =
  let eps = Graph.endpoints t.graph in
  let fs = t.fscr in
  fs.s_acc <- 0.0;
  for i = 0 to Array.length eps - 1 do
    let s = slack t corner (Array.unsafe_get eps i) in
    if s < 0.0 then fs.s_acc <- fs.s_acc +. s
  done;
  fs.s_acc

let violated_endpoints t corner =
  let vs =
    Array.fold_left
      (fun acc n ->
        let s = slack t corner n in
        if s < 0.0 then (Graph.endpoint_of_node t.graph n, s) :: acc else acc)
      [] (Graph.endpoints t.graph)
  in
  List.sort (fun (_, a) (_, b) -> compare a b) vs

(* ------------------------------------------------------------------ *)
(* Cone enumeration                                                    *)

let cone_ctx t =
  let n = max (Graph.num_nodes t.graph) 1 in
  {
    cw_visit = Mark.create n;
    cw_scratch = Array.make n 0.0;
    cw_members = Array.make n 0;
    cw_count = 0;
    cw_acc = 0.0;
  }

let note_cone_visits t n =
  t.stats.cone_visits <- t.stats.cone_visits + n;
  Obs.add t.oc.o_cone n

(* In-place heapsort of [members.(0 .. count-1)] by ascending level —
   the member buffer is reused across walks, so no per-cone array is
   allocated and freed. *)
let sort_members_by_level level members count =
  let key i = Array.unsafe_get level (Array.unsafe_get members i) in
  let swap i j =
    let x = Array.unsafe_get members i in
    Array.unsafe_set members i (Array.unsafe_get members j);
    Array.unsafe_set members j x
  in
  let rec sift i len =
    let l = (2 * i) + 1 in
    if l < len then begin
      let c = if l + 1 < len && key (l + 1) > key l then l + 1 else l in
      if key c > key i then begin
        swap c i;
        sift c len
      end
    end
  in
  for i = (count / 2) - 1 downto 0 do
    sift i count
  done;
  for len = count - 1 downto 1 do
    swap 0 len;
    sift 0 len
  done

(* Collect the cone of [root] (backward when [forward = false]) into the
   context's member buffer, then run a longest/shortest-path DP
   restricted to the cone in level order. Touches only [ctx] and
   read-only timer state — no stats, no Obs — so it is safe to run from
   worker domains; callers account visits via [note_cone_visits]
   afterwards (single-writer). The DP relaxation is an inline CSR loop:
   the only allocations are the result list cells. *)
let cone_in ctx t corner ~root ~forward =
  let g = t.graph in
  let visit = ctx.cw_visit and scratch = ctx.cw_scratch and members = ctx.cw_members in
  let ostart = t.g_out_start
  and oarcs = t.g_out_arcs
  and istart = t.g_in_start
  and iarcs = t.g_in_arcs
  and tails = t.g_tails
  and heads = t.g_heads in
  Mark.reset visit;
  ctx.cw_count <- 0;
  let rec collect n =
    if not (Mark.is_marked visit n) then begin
      Mark.mark visit n;
      let k = ctx.cw_count in
      Array.unsafe_set members k n;
      ctx.cw_count <- k + 1;
      if forward then begin
        if not (Graph.is_endpoint g n) then
          for i = Array.unsafe_get ostart n to Array.unsafe_get ostart (n + 1) - 1 do
            collect (Array.unsafe_get heads (Array.unsafe_get oarcs i))
          done
      end
      else if not (Graph.is_source g n) then
        for i = Array.unsafe_get istart n to Array.unsafe_get istart (n + 1) - 1 do
          collect (Array.unsafe_get tails (Array.unsafe_get iarcs i))
        done
    end
  in
  collect root;
  let count = ctx.cw_count in
  sort_members_by_level t.g_levels members count;
  (* Level strictly increases along arcs, so ascending level is a valid
     relaxation order for the forward cone (over in-arcs) and descending
     for the backward cone (over out-arcs). [sgn] folds the max/min
     corner choice into one compare: multiplying by -1.0 is exact. *)
  let worst = match corner with Late -> neg_infinity | Early -> infinity in
  let sgn = match corner with Late -> 1.0 | Early -> -1.0 in
  let derate = match corner with Late -> 1.0 | Early -> t.cfg.early_derate in
  for i = 0 to count - 1 do
    Array.unsafe_set scratch (Array.unsafe_get members i) worst
  done;
  scratch.(root) <- 0.0;
  let results = ref [] in
  let process n =
    if n <> root then begin
      ctx.cw_acc <- worst;
      if forward then
        for i = Array.unsafe_get istart n to Array.unsafe_get istart (n + 1) - 1 do
          let a = Array.unsafe_get iarcs i in
          let u = Array.unsafe_get tails a in
          if Mark.is_marked visit u then begin
            let su = Array.unsafe_get scratch u in
            if su <> worst then begin
              let cand = su +. (derate *. arc_delay_max t a) in
              if sgn *. cand > sgn *. ctx.cw_acc then ctx.cw_acc <- cand
            end
          end
        done
      else
        for i = Array.unsafe_get ostart n to Array.unsafe_get ostart (n + 1) - 1 do
          let a = Array.unsafe_get oarcs i in
          let v = Array.unsafe_get heads a in
          if Mark.is_marked visit v then begin
            let sv = Array.unsafe_get scratch v in
            if sv <> worst then begin
              let cand = (derate *. arc_delay_max t a) +. sv in
              if sgn *. cand > sgn *. ctx.cw_acc then ctx.cw_acc <- cand
            end
          end
        done;
      Array.unsafe_set scratch n ctx.cw_acc
    end;
    let sn = Array.unsafe_get scratch n in
    if sn <> worst then
      if forward then begin
        if Graph.is_endpoint g n && n <> root then results := (n, sn) :: !results
      end
      else if Graph.is_source g n && n <> root then results := (n, sn) :: !results
  in
  if forward then
    for i = 0 to count - 1 do
      process (Array.unsafe_get members i)
    done
  else
    for i = count - 1 downto 0 do
      process (Array.unsafe_get members i)
    done;
  (!results, count)

let cone t corner ~root ~forward =
  let results, count = cone_in t.own_ctx t corner ~root ~forward in
  note_cone_visits t count;
  (results, count)

let cone_to_endpoint_in ctx t corner e =
  let root = Graph.node_of_endpoint t.graph e in
  let raw, visited = cone_in ctx t corner ~root ~forward:false in
  (List.map (fun (n, d) -> (Graph.launcher_of_node t.graph n, d)) raw, visited)

let cone_from_launcher_in ctx t corner l =
  let root = Graph.source_of_launcher t.graph l in
  let raw, visited = cone_in ctx t corner ~root ~forward:true in
  (List.map (fun (n, d) -> (Graph.endpoint_of_node t.graph n, d)) raw, visited)

(* The raw node-level walk, for callers (the macromodel cache) that
   store and replay cones without the launcher/endpoint classification.
   On return [ctx]'s mark still holds exactly the cone members and
   [ctx_members ctx .. ctx_member_count ctx - 1] lists them in the DP's
   level order — content hashing reuses both without re-walking. *)
let cone_nodes_in ctx t corner ~root ~forward = cone_in ctx t corner ~root ~forward

let ctx_members ctx = ctx.cw_members
let ctx_member_count ctx = ctx.cw_count
let ctx_mark ctx = ctx.cw_visit

let cone_to_endpoint t corner e =
  let root = Graph.node_of_endpoint t.graph e in
  let raw, visited = cone t corner ~root ~forward:false in
  (List.map (fun (n, d) -> (Graph.launcher_of_node t.graph n, d)) raw, visited)

let cone_from_launcher t corner l =
  let root = Graph.source_of_launcher t.graph l in
  let raw, visited = cone t corner ~root ~forward:true in
  (List.map (fun (n, d) -> (Graph.endpoint_of_node t.graph n, d)) raw, visited)

(* ------------------------------------------------------------------ *)
(* Path tracing                                                        *)

let worst_path t corner e =
  let g = t.graph in
  let pred = match corner with Late -> t.pred_max | Early -> t.pred_min in
  let rec walk n acc =
    let acc = Graph.pin_of_node g n :: acc in
    let a = pred.(n) in
    if a < 0 then acc else walk (Graph.arc_from g a) acc
  in
  let n = Graph.node_of_endpoint g e in
  if arrival t corner n = neg_infinity || arrival t corner n = infinity then []
  else walk n []

(* Best-first enumeration of the k most critical paths into an endpoint.
   A queue item is a backward prefix from the endpoint to [node] with
   accumulated suffix delay [acc]; its score [arrival(node) + acc] is the
   exact arrival the best completion of this prefix realizes, so items
   pop in true criticality order and each source pop is a final path. *)
let k_worst_paths t corner e ~k =
  if k <= 0 then []
  else begin
    let g = t.graph in
    let root = Graph.node_of_endpoint g e in
    let arrival_of n = match corner with Late -> t.at_max.(n) | Early -> t.at_min.(n) in
    let unreachable n =
      match corner with Late -> t.at_max.(n) = neg_infinity | Early -> t.at_min.(n) = infinity
    in
    if unreachable root then []
    else begin
      (* pop the largest arrival first for Late, smallest for Early *)
      let cmp (s1, _, _, _) (s2, _, _, _) =
        match corner with Late -> compare s2 s1 | Early -> compare s1 s2
      in
      let heap = Heap.create ~cmp in
      (* (score, node, suffix delay, suffix node list including node) *)
      Heap.push heap (arrival_of root, root, 0.0, [ root ]);
      let results = ref [] in
      let count = ref 0 in
      let slack_of_arrival arr =
        match corner with
        | Late -> t.rat_late.(root) -. arr
        | Early -> arr -. t.rat_early.(root)
      in
      while !count < k && not (Heap.is_empty heap) do
        let _, node, acc, suffix = Heap.pop heap in
        if Graph.is_source g node then begin
          incr count;
          let arr = arrival_of node +. acc in
          results := (slack_of_arrival arr, List.map (Graph.pin_of_node g) suffix) :: !results
        end
        else
          Graph.iter_in g node (fun a u ->
              if not (unreachable u) then begin
                let d = arc_delay t corner a in
                Heap.push heap (arrival_of u +. d +. acc, u, acc +. d, u :: suffix)
              end)
      done;
      List.rev !results
    end
  end

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)

(* Process-unique timer identities: a cache holding entries for one
   timer must detect being handed a different one (new graph, new node
   numbering) even across ECO rebuilds that reuse the same address. *)
let next_timer_id = Atomic.make 1

let build ?(config = default_config) ?(obs = Obs.null) design =
  let graph = Graph.build design in
  let n = Graph.num_nodes graph in
  let sz = max n 1 in
  let out_start, out_arcs = Graph.csr_out graph in
  let in_start, in_arcs = Graph.csr_in graph in
  let wire = Library.wire (Design.library design) in
  let t =
    {
      graph;
      design;
      cfg = config;
      stats =
        { full_propagations = 0; forward_visits = 0; backward_visits = 0; cone_visits = 0 };
      obs;
      oc = resolve_obs_counters obs;
      load = Array.make sz 0.0;
      at_max = Array.make sz neg_infinity;
      at_min = Array.make sz infinity;
      slew = Array.make sz config.initial_slew;
      pred_max = Array.make sz (-1);
      pred_min = Array.make sz (-1);
      rat_late = Array.make sz infinity;
      rat_early = Array.make sz neg_infinity;
      stamp = Array.make sz 0;
      delay_gen = 1;
      t_id = Atomic.fetch_and_add next_timer_id 1;
      visit = Mark.create sz;
      own_ctx =
        {
          cw_visit = Mark.create sz;
          cw_scratch = Array.make sz 0.0;
          cw_members = Array.make sz 0;
          cw_count = 0;
          cw_acc = 0.0;
        };
      g_node_pin = Graph.node_pins graph;
      g_out_start = out_start;
      g_out_arcs = out_arcs;
      g_in_start = in_start;
      g_in_arcs = in_arcs;
      g_tails = Graph.arc_tails graph;
      g_heads = Graph.arc_heads graph;
      g_kinds = Graph.arc_kinds graph;
      g_levels = Graph.levels graph;
      g_launch = Graph.launcher_codes graph;
      g_end = Graph.endpoint_codes graph;
      wire_r = wire.Wire.r_unit;
      wire_c = wire.Wire.c_unit;
      fscr = { s_best_max = 0.0; s_best_min = 0.0; s_best_slew = 0.0; s_acc = 0.0 };
    }
  in
  propagate t;
  t
