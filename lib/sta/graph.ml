module Vec = Css_util.Vec
module Ivec = Css_util.Ivec
module Design = Css_netlist.Design
module Cell = Css_liberty.Cell

type node = int

type launcher =
  | Launch_ff of Design.cell_id
  | Launch_port of Design.port_id

type endpoint =
  | End_ff of Design.cell_id
  | End_port of Design.port_id

type arc_kind =
  | Cell_arc of Css_liberty.Delay_model.t
  | Net_arc

(* Launchers and endpoints are stored int-encoded per node: -1 for a
   plain node, [2*cell] for an FF, [2*port+1] for a port. The variant
   views are materialized on demand by [launcher_of_node] /
   [endpoint_of_node]; the hot predicates [is_source] / [is_endpoint]
   are single int compares. *)
let enc_ff c = 2 * c
let enc_port p = (2 * p) + 1

type t = {
  design : Design.t;
  node_pin : Design.pin_id array;
  node_of_pin : int array;  (* -1 when excluded *)
  (* arcs, CSR in both directions *)
  a_from : int array;
  a_to : int array;
  a_kind : arc_kind array;
  out_start : int array;  (* node -> index into out_arcs *)
  out_arcs : int array;  (* arc ids grouped by from-node *)
  in_start : int array;
  in_arcs : int array;
  level : int array;
  topo : int array;
  sources : int array;
  endpoints : int array;
  node_launcher : int array;  (* encoded; -1 = not a source *)
  node_endpoint : int array;  (* encoded; -1 = not an endpoint *)
}

let ck_pin = "CK"

(* A pin participates in the data graph unless it belongs to the clock
   network: LCB pins, FF CK pins, and the clock-root port pin. *)
let is_data_pin_fast d ~ck_tok p =
  let c = Design.pin_cell_id d p in
  if c < 0 then Design.clock_root_id d <> Design.pin_port_id d p
  else
    (not (Design.is_lcb d c))
    && not (Design.is_ff d c && Design.pin_name_id d p = ck_tok)

let build design =
  let npins = Design.num_pins design in
  let ck_tok = Design.pin_name_token design ck_pin in
  let node_of_pin = Array.make npins (-1) in
  let node_pin_v = Ivec.create ~capacity:npins () in
  for p = 0 to npins - 1 do
    if is_data_pin_fast design ~ck_tok p then node_of_pin.(p) <- Ivec.push node_pin_v p
  done;
  let node_pin = Ivec.to_array node_pin_v in
  let n = Array.length node_pin in
  (* arc accumulation in parallel columns — no per-arc tuples *)
  let arc_from = Ivec.create () and arc_to = Ivec.create () in
  let arc_kind_v = Vec.create () in
  let add_arc from_pin to_pin kind =
    let u = node_of_pin.(from_pin) and v = node_of_pin.(to_pin) in
    if u >= 0 && v >= 0 then begin
      ignore (Ivec.push arc_from u);
      ignore (Ivec.push arc_to v);
      ignore (Vec.push arc_kind_v kind)
    end
  in
  (* cell arcs *)
  Design.iter_cells design (fun c ->
      let master = Design.cell_master design c in
      match master.Cell.role with
      | Cell.Flip_flop _ | Cell.Clock_buffer _ ->
        (* FF CK->Q is modelled as a launch source, not an arc; LCBs are
           not part of the data graph at all. *)
        ()
      | Cell.Combinational ->
        List.iter
          (fun (arc : Cell.arc) ->
            add_arc (Design.cell_pin design c arc.from_pin)
              (Design.cell_pin design c arc.to_pin) (Cell_arc arc.model))
          master.Cell.arcs);
  (* net arcs *)
  Design.iter_nets design (fun net ->
      let drv = Design.net_driver_id design net in
      if drv >= 0 && node_of_pin.(drv) >= 0 then
        Design.iter_net_sinks design net (fun sink -> add_arc drv sink Net_arc));
  let m = Ivec.length arc_from in
  let a_from = Ivec.to_array arc_from and a_to = Ivec.to_array arc_to in
  let a_kind = Array.make m Net_arc in
  Vec.iteri (fun i k -> a_kind.(i) <- k) arc_kind_v;
  let csr key =
    let start = Array.make (n + 1) 0 in
    for a = 0 to m - 1 do
      start.(key.(a) + 1) <- start.(key.(a) + 1) + 1
    done;
    for i = 1 to n do
      start.(i) <- start.(i) + start.(i - 1)
    done;
    let cursor = Array.copy start in
    let ids = Array.make m 0 in
    for a = 0 to m - 1 do
      let k = key.(a) in
      ids.(cursor.(k)) <- a;
      cursor.(k) <- cursor.(k) + 1
    done;
    (start, ids)
  in
  let out_start, out_arcs = csr a_from in
  let in_start, in_arcs = csr a_to in
  (* Kahn levelization *)
  let indeg = Array.make n 0 in
  Array.iter (fun v -> indeg.(v) <- indeg.(v) + 1) a_to;
  let level = Array.make n 0 in
  let topo = Array.make n 0 in
  let head = ref 0 and tail = ref 0 in
  for v = 0 to n - 1 do
    if indeg.(v) = 0 then begin
      topo.(!tail) <- v;
      incr tail
    end
  done;
  while !head < !tail do
    let u = topo.(!head) in
    incr head;
    for i = out_start.(u) to out_start.(u + 1) - 1 do
      let a = out_arcs.(i) in
      let v = a_to.(a) in
      if level.(v) < level.(u) + 1 then level.(v) <- level.(u) + 1;
      indeg.(v) <- indeg.(v) - 1;
      if indeg.(v) = 0 then begin
        topo.(!tail) <- v;
        incr tail
      end
    done
  done;
  if !tail <> n then failwith "Graph.build: combinational cycle detected";
  (* classify sources and endpoints *)
  let node_launcher = Array.make (max n 1) (-1) in
  let node_endpoint = Array.make (max n 1) (-1) in
  let q_tok = Design.pin_name_token design "Q" in
  let d_tok = Design.pin_name_token design "D" in
  let sources = Ivec.create () and endpoints = Ivec.create () in
  Array.iteri
    (fun nd p ->
      let c = Design.pin_cell_id design p in
      if c < 0 then begin
        let port = Design.pin_port_id design p in
        if Design.port_dir design port = Design.In then begin
          node_launcher.(nd) <- enc_port port;
          ignore (Ivec.push sources nd)
        end
        else begin
          node_endpoint.(nd) <- enc_port port;
          ignore (Ivec.push endpoints nd)
        end
      end
      else if Design.is_ff design c then begin
        let tok = Design.pin_name_id design p in
        if tok = q_tok then begin
          node_launcher.(nd) <- enc_ff c;
          ignore (Ivec.push sources nd)
        end
        else if tok = d_tok then begin
          node_endpoint.(nd) <- enc_ff c;
          ignore (Ivec.push endpoints nd)
        end
      end)
    node_pin;
  {
    design;
    node_pin;
    node_of_pin;
    a_from;
    a_to;
    a_kind;
    out_start;
    out_arcs;
    in_start;
    in_arcs;
    level;
    topo;
    sources = Ivec.to_array sources;
    endpoints = Ivec.to_array endpoints;
    node_launcher;
    node_endpoint;
  }

let design t = t.design
let num_nodes t = Array.length t.node_pin
let num_arcs t = Array.length t.a_from

let node_of_pin t p = if t.node_of_pin.(p) < 0 then None else Some t.node_of_pin.(p)

let pin_of_node t n = t.node_pin.(n)
let level t n = t.level.(n)
let topo_order t = t.topo

let iter_out t n f =
  for i = t.out_start.(n) to t.out_start.(n + 1) - 1 do
    let a = t.out_arcs.(i) in
    f a t.a_to.(a)
  done

let iter_in t n f =
  for i = t.in_start.(n) to t.in_start.(n + 1) - 1 do
    let a = t.in_arcs.(i) in
    f a t.a_from.(a)
  done

let arc_kind t a = t.a_kind.(a)

let refresh_cell_arcs t c =
  let master = Design.cell_master t.design c in
  List.iter
    (fun (arc : Cell.arc) ->
      match
        ( t.node_of_pin.(Design.cell_pin t.design c arc.Cell.from_pin),
          t.node_of_pin.(Design.cell_pin t.design c arc.Cell.to_pin) )
      with
      | u, v when u >= 0 && v >= 0 ->
        for i = t.out_start.(u) to t.out_start.(u + 1) - 1 do
          let a = t.out_arcs.(i) in
          if t.a_to.(a) = v then
            match t.a_kind.(a) with
            | Cell_arc _ -> t.a_kind.(a) <- Cell_arc arc.Cell.model
            | Net_arc -> ()
        done
      | _ -> ())
    master.Cell.arcs
let arc_from t a = t.a_from.(a)
let arc_to t a = t.a_to.(a)
let sources t = t.sources
let endpoints t = t.endpoints

let decode_launcher enc =
  if enc land 1 = 0 then Launch_ff (enc lsr 1) else Launch_port (enc lsr 1)

let decode_endpoint enc = if enc land 1 = 0 then End_ff (enc lsr 1) else End_port (enc lsr 1)

let launcher_of_node t n =
  let enc = t.node_launcher.(n) in
  if enc < 0 then invalid_arg "Graph.launcher_of_node: not a source node"
  else decode_launcher enc

let endpoint_of_node t n =
  let enc = t.node_endpoint.(n) in
  if enc < 0 then invalid_arg "Graph.endpoint_of_node: not an endpoint node"
  else decode_endpoint enc

let is_source t n = t.node_launcher.(n) >= 0
let is_endpoint t n = t.node_endpoint.(n) >= 0

let node_of_pin_exn t p =
  match node_of_pin t p with
  | Some n -> n
  | None -> invalid_arg "Graph: pin is not in the data graph"

let ff_q_node t ff = node_of_pin_exn t (Design.cell_pin t.design ff "Q")

let ff_d_node t ff = node_of_pin_exn t (Design.cell_pin t.design ff "D")

let source_of_launcher t = function
  | Launch_ff ff -> ff_q_node t ff
  | Launch_port port -> node_of_pin_exn t (Design.port_pin t.design port)

let node_of_endpoint t = function
  | End_ff ff -> ff_d_node t ff
  | End_port port -> node_of_pin_exn t (Design.port_pin t.design port)

(* Raw column access for the timer's allocation-free sweeps. *)
let node_pins t = t.node_pin
let launcher_codes t = t.node_launcher
let endpoint_codes t = t.node_endpoint
let csr_out t = (t.out_start, t.out_arcs)
let csr_in t = (t.in_start, t.in_arcs)
let arc_tails t = t.a_from
let arc_heads t = t.a_to
let arc_kinds t = t.a_kind
let levels t = t.level
