type t = {
  wire : Wire.t;
  by_name : (string, Cell.t) Hashtbl.t;
  ordered : Cell.t list;
}

let make ~wire cells =
  let by_name = Hashtbl.create 16 in
  List.iter
    (fun (c : Cell.t) ->
      if Hashtbl.mem by_name c.name then
        invalid_arg (Printf.sprintf "Library.make: duplicate cell %s" c.name);
      Hashtbl.add by_name c.name c)
    cells;
  { wire; by_name; ordered = cells }

let find t name =
  match Hashtbl.find_opt t.by_name name with Some c -> c | None -> raise Not_found

let find_opt t name = Hashtbl.find_opt t.by_name name

let wire t = t.wire

let cells t = t.ordered

let combinational t =
  List.filter (fun c -> not (Cell.is_sequential c || Cell.is_clock_buffer c)) t.ordered

let variants t cell =
  List.filter
    (fun c -> Cell.family c = Cell.family cell && Cell.same_interface c cell)
    t.ordered
  |> List.sort (fun (a : Cell.t) b -> compare b.Cell.drive_res a.Cell.drive_res)

let flip_flop t = List.find Cell.is_sequential t.ordered

let clock_buffer t = List.find Cell.is_clock_buffer t.ordered

let validate t =
  let module Diag = Css_util.Diag in
  let col = Diag.collector () in
  let err ~code fmt = Printf.ksprintf (fun m -> Diag.emit col (Diag.error ~code m)) fmt in
  if not (List.exists Cell.is_sequential t.ordered) then
    err ~code:"LIB-001" "library has no sequential cell";
  if not (List.exists Cell.is_clock_buffer t.ordered) then
    err ~code:"LIB-002" "library has no clock buffer";
  let finite = Float.is_finite in
  List.iter
    (fun (c : Cell.t) ->
      if not (finite c.input_cap && c.input_cap >= 0.0) then
        err ~code:"LIB-003" "cell %s: input capacitance %g is not finite non-negative" c.name
          c.input_cap;
      if not (finite c.drive_res && c.drive_res >= 0.0) then
        err ~code:"LIB-003" "cell %s: drive resistance %g is not finite non-negative" c.name
          c.drive_res;
      if not (finite c.area && c.area > 0.0) then
        err ~code:"LIB-008" "cell %s: area %g is not finite positive" c.name c.area;
      (match c.role with
      | Cell.Flip_flop p ->
        if not (finite p.setup && finite p.hold && finite p.clk_to_q) then
          err ~code:"LIB-004" "cell %s: non-finite setup/hold/clk-to-q parameters" c.name;
        if c.arcs = [] then
          err ~code:"LIB-007" "cell %s: flip-flop has no clock-to-output timing arc" c.name
      | Cell.Clock_buffer { insertion } ->
        if not (finite insertion) then
          err ~code:"LIB-004" "cell %s: non-finite insertion delay" c.name;
        if c.arcs = [] then
          err ~code:"LIB-007" "cell %s: clock buffer has no timing arc" c.name
      | Cell.Combinational -> ());
      List.iter
        (fun (a : Cell.arc) ->
          if not (List.mem a.from_pin c.inputs) then
            err ~code:"LIB-005" "cell %s: arc from unknown pin %s" c.name a.from_pin;
          if not (List.mem a.to_pin c.outputs) then
            err ~code:"LIB-005" "cell %s: arc to unknown pin %s" c.name a.to_pin;
          (* probe the model at a representative operating point *)
          let d = Delay_model.delay a.model ~slew:10.0 ~load:8.0 in
          if not (finite d) then
            err ~code:"LIB-006" "cell %s: arc %s->%s evaluates to a non-finite delay" c.name
              a.from_pin a.to_pin)
        c.arcs)
    t.ordered;
  Diag.diags col

(* The default technology. Delays in ps, caps in fF; a mix of linear and
   LUT models so both evaluation paths are exercised by every design. *)
let default =
  let lin i r = Delay_model.linear ~intrinsic:i ~resistance:r () in
  let lut base =
    Delay_model.lut ~slew_axis:[| 2.0; 20.0; 80.0 |] ~load_axis:[| 1.0; 8.0; 32.0 |]
      ~delays:
        [|
          [| base; base +. 6.0; base +. 22.0 |];
          [| base +. 2.0; base +. 9.0; base +. 26.0 |];
          [| base +. 7.0; base +. 15.0; base +. 34.0 |];
        |]
  in
  let comb name inputs model ~cap ~res ~area =
    Cell.make ~name ~inputs ~outputs:[ "Z" ]
      ~arcs:(List.map (fun pin -> { Cell.from_pin = pin; to_pin = "Z"; model }) inputs)
      ~role:Cell.Combinational ~input_cap:cap ~drive_res:res ~area
  in
  let ff =
    let params = { Cell.setup = 40.0; hold = 20.0; clk_to_q = 35.0 } in
    Cell.make ~name:"DFF" ~inputs:[ "D"; "CK" ] ~outputs:[ "Q" ]
      ~arcs:[ { Cell.from_pin = "CK"; to_pin = "Q"; model = lin 35.0 1.2 } ]
      ~role:(Cell.Flip_flop params) ~input_cap:1.8 ~drive_res:0.9 ~area:8.0
  in
  (* a faster, hold-hungrier flop so endpoints carry heterogeneous
     setup/hold/c2q parameters through Eq. (1)(2) *)
  let ff_fast =
    let params = { Cell.setup = 30.0; hold = 15.0; clk_to_q = 27.0 } in
    Cell.make ~name:"DFF_FAST" ~inputs:[ "D"; "CK" ] ~outputs:[ "Q" ]
      ~arcs:[ { Cell.from_pin = "CK"; to_pin = "Q"; model = lin 27.0 0.8 } ]
      ~role:(Cell.Flip_flop params) ~input_cap:2.2 ~drive_res:0.7 ~area:10.0
  in
  let lcb =
    Cell.make ~name:"LCB" ~inputs:[ "CKI" ] ~outputs:[ "CKO" ]
      ~arcs:[ { Cell.from_pin = "CKI"; to_pin = "CKO"; model = lin 45.0 0.5 } ]
      ~role:(Cell.Clock_buffer { insertion = 45.0 }) ~input_cap:2.5 ~drive_res:1.0 ~area:6.0
  in
  make ~wire:Wire.default
    [
      comb "INV_X1" [ "A" ] (lin 12.0 1.8) ~cap:1.0 ~res:1.4 ~area:2.0;
      comb "INV_X4" [ "A" ] (lin 9.0 0.6) ~cap:2.6 ~res:0.5 ~area:4.0;
      comb "BUF_X2" [ "A" ] (lin 18.0 1.0) ~cap:1.3 ~res:0.8 ~area:3.0;
      comb "BUF_X4" [ "A" ] (lin 14.0 0.5) ~cap:2.4 ~res:0.45 ~area:5.0;
      comb "NAND2_X1" [ "A"; "B" ] (lut 16.0) ~cap:1.2 ~res:1.2 ~area:3.0;
      comb "NAND2_X2" [ "A"; "B" ] (lut 11.0) ~cap:2.0 ~res:0.7 ~area:4.5;
      comb "NOR2_X1" [ "A"; "B" ] (lut 19.0) ~cap:1.2 ~res:1.3 ~area:3.0;
      comb "NOR2_X2" [ "A"; "B" ] (lut 13.0) ~cap:2.0 ~res:0.75 ~area:4.5;
      comb "XOR2_X1" [ "A"; "B" ] (lut 28.0) ~cap:1.6 ~res:1.5 ~area:5.0;
      comb "AOI21_X1" [ "A"; "B"; "C" ] (lut 23.0) ~cap:1.3 ~res:1.4 ~area:4.0;
      ff;
      ff_fast;
      lcb;
    ]
