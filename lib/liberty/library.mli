(** A cell library: named cell descriptors plus the wire model.

    [default] provides a small but realistic technology: inverters and
    buffers in two drive strengths, 2-input NAND/NOR/XOR, AOI21, a D
    flip-flop and a local clock buffer. The synthetic benchmark generator
    composes designs exclusively from these cells. *)

type t

(** [make ~wire cells] indexes [cells] by name.
    @raise Invalid_argument on duplicate cell names. *)
val make : wire:Wire.t -> Cell.t list -> t

(** [find t name] looks a cell up. @raise Not_found if absent. *)
val find : t -> string -> Cell.t

val find_opt : t -> string -> Cell.t option
val wire : t -> Wire.t
val cells : t -> Cell.t list

(** [combinational t] are the non-sequential, non-LCB cells. *)
val combinational : t -> Cell.t list

(** [flip_flop t] is the library's flip-flop.
    @raise Not_found if the library has none. *)
val flip_flop : t -> Cell.t

(** [clock_buffer t] is the library's LCB.
    @raise Not_found if the library has none. *)
val clock_buffer : t -> Cell.t

(** [variants t cell] lists the cells interchangeable with [cell]: same
    logic family (see {!Cell.family}) and pin interface, including [cell]
    itself, sorted weakest drive first (descending drive resistance). *)
val variants : t -> Cell.t -> Cell.t list

(** [validate t] sweeps the library for degeneracies that would corrupt
    timing analysis downstream (codes [LIB-001..LIB-008], catalogued in
    [docs/ROBUSTNESS.md]): missing flip-flop or clock buffer, non-finite
    electrical parameters, arcs referencing unknown pins, delay models
    that evaluate to NaN or infinity at a representative operating
    point, sequential cells without timing arcs, and non-positive cell
    areas. Empty means usable. The fault harness
    ({!Css_benchgen.Mutator.corrupt_library}) plants exactly these
    defects and asserts each is caught. *)
val validate : t -> Css_util.Diag.t list

(** [default] is the built-in technology library. *)
val default : t
