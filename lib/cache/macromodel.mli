(** Cone macromodels: content-addressed interface timing models.

    Every extraction engine reduces to the same primitive — walk the
    combinational cone of a root pin and report, per reachable interface
    node (FF-D/output port forward, FF-Q/input port backward), the
    extreme pure path delay. That walk dominates Update-Extract at
    paper scale, and its result only depends on the cone's {e delays}:
    clock latencies enter afterwards, through {!Css_sta.Timer.edge_slack}.
    So a cone compresses into a macromodel — the interface nodes and
    their delays — that stays exact across every latency-only scheduler
    iteration and every warm ECO request that does not edit the cone.

    Validation is two-tier:

    - {e stamp tier} ({!stamp_fresh}): every member's
      {!Css_sta.Timer.delay_stamp} is [<=] the entry's snapshot
      generation. Allocation-free; the common case on latency-only
      iterations.
    - {e hash tier} ({!revalidate}): recompute the FNV-1a content hash
      over the cone's member nodes, internal arcs and their current
      max-corner delays, and compare. Catches stamped-but-unchanged
      cones (e.g. a slew that flipped and flipped back), restored
      checkpoints, and timer rebinds.

    A miss re-walks and {!store}s a fresh model.

    Concurrency contract (mirrors [Extract]'s worker-pure/merge-commit
    protocol): worker domains may call {!probe}, {!stamp_fresh},
    {!revalidate} and {!make} concurrently {e provided} no two in-flight
    items share a root (extraction rounds guarantee distinct roots —
    [revalidate] writes only its own entry's fields). Everything that
    edits the table, the LRU list, the byte account or the counters —
    {!touch}, {!store}, {!note_hit}, {!note_miss}, {!trim}, {!bind} —
    is merge-side, single-threaded. *)

module Timer = Css_sta.Timer
module Graph = Css_sta.Graph

type t

(** One cached cone model. Fields are exposed read-only via accessors;
    the record itself is abstract. *)
type entry

(** [create ?obs ?max_bytes ()] makes an empty cache. [max_bytes]
    (default 64 MiB) bounds the sum of entry footprints; inserting past
    it evicts least-recently-used entries. [obs] receives the [cache.*]
    counters ([hit], [rehash_hit], [miss], [evictions], [trims]) and the
    [cache.hit_seconds]/[cache.miss_seconds] lookup-latency histograms. *)
val create : ?obs:Css_util.Obs.t -> ?max_bytes:int -> unit -> t

(** [key ~root ~corner ~forward] encodes a cone identity:
    [(root lsl 2) lor corner lor direction]. *)
val key : root:Graph.node -> corner:Timer.corner -> forward:bool -> int

(** [bind t timer] attaches the cache to [timer]. A no-op when already
    bound to it; on a different timer (ECO rebuild, restored checkpoint)
    every entry is bounds-checked against the new graph — dropped if its
    stored node ids are no longer a plausible cone — and survivors are
    demoted to hash-tier validation ([stamp_fresh] returns false until
    {!revalidate} re-earns trust). Merge-side only. *)
val bind : t -> Timer.t -> unit

(** [probe t ~key] finds the live entry for [key].
    @raise Not_found when absent. Allocation-free. *)
val probe : t -> key:int -> entry

(** [stamp_fresh t timer e] is the allocation-free fast validation:
    true when [e] carries a stamp-verified snapshot and no member's
    delay stamp is newer. *)
val stamp_fresh : t -> Timer.t -> entry -> bool

(** [revalidate t timer ctx e] recomputes [e]'s content hash against the
    current delays (using [ctx]'s mark as member-set scratch) and, on a
    match, refreshes the snapshot so the stamp tier works again. False
    means the cone's content really changed: re-walk and {!store}. *)
val revalidate : t -> Timer.t -> Timer.cone_ctx -> entry -> bool

(** [make timer ctx ~key ~results ~visited] builds a fresh entry from a
    walk that just ran through [ctx] (whose mark and member buffer must
    still hold that cone — i.e. call this immediately after
    [Timer.cone_nodes_in]). [results]/[visited] are that walk's outputs. *)
val make :
  Timer.t -> Timer.cone_ctx -> key:int -> results:(Graph.node * float) list -> visited:int ->
  entry

(** [interface e] replays the model as the exact [(node, delay)] list
    the original walk returned, in the same order — callers rebuild
    candidates bit-identically to a fresh walk. *)
val interface : entry -> (Graph.node * float) list

(** [visited e] is the node count the original walk reported — the work
    a hit avoids. *)
val visited : entry -> int

(** [entry_bytes e] is [e]'s accounted footprint. *)
val entry_bytes : entry -> int

(** {1 Merge-side commits} *)

(** [touch t e] moves [e] to the recently-used end. *)
val touch : t -> entry -> unit

(** [store t e] inserts [e], replacing any entry with the same key, then
    evicts from the LRU end while over budget. *)
val store : t -> entry -> unit

(** [note_hit t ~rehash ~seconds] / [note_miss t ~seconds] account one
    lookup's outcome and latency. *)
val note_hit : t -> rehash:bool -> seconds:float -> unit

val note_miss : t -> seconds:float -> unit

(** [trim t ~frac] evicts from the LRU end until the footprint is at
    most [frac *. max_bytes] — the resource-governor's degradation hook
    (see [Css_util.Budget]; the session ladder trims on RSS pressure). *)
val trim : t -> frac:float -> unit

(** {1 Introspection} *)

val hits : t -> int
val rehash_hits : t -> int
val misses : t -> int
val evictions : t -> int
val entries : t -> int
val bytes : t -> int
val max_bytes : t -> int

(** {1 Persistence}

    Checkpoint integration ([Css_flow.Persist]): models survive daemon
    restarts and SIGKILL-resume. Restored entries are unbound and
    stamp-unverified — the first {!bind} bounds-checks them and the
    first lookup hash-validates, so a checkpoint can never smuggle in a
    stale answer. *)

type entry_snap = {
  cs_key : int;
  cs_hash : int64;
  cs_visited : int;
  cs_members : int array;
  cs_nodes : int array;
  cs_delays : float array;
}

(** [snapshot t] dumps live entries, least-recently-used first (so
    {!restore} rebuilds the recency order by pushing in sequence). *)
val snapshot : t -> entry_snap list

(** [restore t snaps] repopulates an empty-or-not cache from a
    checkpoint; existing entries with colliding keys are replaced. *)
val restore : t -> entry_snap list -> unit
