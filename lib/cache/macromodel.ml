module Timer = Css_sta.Timer
module Graph = Css_sta.Graph
module Mark = Css_util.Mark
module Obs = Css_util.Obs
module Histo = Css_util.Histo
module Fnv = Css_util.Fnv

(* Entries double as intrusive LRU list links (prev/next through a
   sentinel): moving an entry to the front on a hit is pointer surgery,
   no allocation. [e_snap = -1] marks a stamp-unverified entry (fresh
   from a checkpoint or demoted by a rebind): only the hash tier can
   validate it. *)
type entry = {
  e_key : int;
  mutable e_snap : int;
  mutable e_hash : int64;
  e_members : int array; (* cone nodes, DP level order, root included *)
  e_nodes : int array; (* interface nodes, original result-list order *)
  e_delays : float array;
  e_visited : int;
  e_bytes : int;
  mutable e_prev : entry;
  mutable e_next : entry;
  mutable e_linked : bool;
}

type t = {
  tbl : (int, entry) Hashtbl.t;
  sent : entry; (* LRU sentinel: [sent.e_next] = MRU, [sent.e_prev] = LRU *)
  mutable t_bytes : int;
  t_max_bytes : int;
  mutable bound : int; (* Timer.timer_id, 0 = unbound *)
  mutable n_hits : int;
  mutable n_rehash : int;
  mutable n_misses : int;
  mutable n_evict : int;
  o_hit : Obs.counter;
  o_rehash : Obs.counter;
  o_miss : Obs.counter;
  o_evict : Obs.counter;
  o_trim : Obs.counter;
  h_hit : Histo.t;
  h_miss : Histo.t;
}

(* Accounted footprint in bytes: the entry record (13 fields + header),
   three array headers, and the array payloads — int and float arrays
   are one word per element on 64-bit. *)
let footprint ~members ~ifaces = 8 * (14 + 3 + members + (2 * ifaces))

let create ?(obs = Obs.null) ?(max_bytes = 64 * 1024 * 1024) () =
  let rec sent =
    {
      e_key = min_int;
      e_snap = -1;
      e_hash = 0L;
      e_members = [||];
      e_nodes = [||];
      e_delays = [||];
      e_visited = 0;
      e_bytes = 0;
      e_prev = sent;
      e_next = sent;
      e_linked = false;
    }
  in
  {
    tbl = Hashtbl.create 1024;
    sent;
    t_bytes = 0;
    t_max_bytes = max_bytes;
    bound = 0;
    n_hits = 0;
    n_rehash = 0;
    n_misses = 0;
    n_evict = 0;
    o_hit = Obs.counter obs "cache.hit";
    o_rehash = Obs.counter obs "cache.rehash_hit";
    o_miss = Obs.counter obs "cache.miss";
    o_evict = Obs.counter obs "cache.evictions";
    o_trim = Obs.counter obs "cache.trims";
    h_hit = Obs.histogram obs "cache.hit_seconds";
    h_miss = Obs.histogram obs "cache.miss_seconds";
  }

let key ~root ~corner ~forward =
  (root lsl 2)
  lor (match corner with Timer.Late -> 2 | Timer.Early -> 0)
  lor (if forward then 1 else 0)

let key_root k = k lsr 2
let key_forward k = k land 1 = 1

(* ------------------------------------------------------------------ *)
(* LRU plumbing                                                        *)

let unlink e =
  e.e_prev.e_next <- e.e_next;
  e.e_next.e_prev <- e.e_prev;
  e.e_linked <- false

let push_front t e =
  e.e_next <- t.sent.e_next;
  e.e_prev <- t.sent;
  t.sent.e_next.e_prev <- e;
  t.sent.e_next <- e;
  e.e_linked <- true

let touch t e =
  if e.e_linked then begin
    unlink e;
    push_front t e
  end

let drop t e =
  if e.e_linked then unlink e;
  Hashtbl.remove t.tbl e.e_key;
  t.t_bytes <- t.t_bytes - e.e_bytes

let evict_down_to t target =
  while t.t_bytes > target && t.sent.e_prev != t.sent do
    drop t t.sent.e_prev;
    t.n_evict <- t.n_evict + 1;
    Obs.incr t.o_evict
  done

let store t e =
  (match Hashtbl.find_opt t.tbl e.e_key with Some old -> drop t old | None -> ());
  Hashtbl.replace t.tbl e.e_key e;
  t.t_bytes <- t.t_bytes + e.e_bytes;
  push_front t e;
  evict_down_to t t.t_max_bytes

let trim t ~frac =
  Obs.incr t.o_trim;
  evict_down_to t (int_of_float (frac *. float_of_int t.t_max_bytes))

(* ------------------------------------------------------------------ *)
(* Content hashing                                                     *)

(* The hash covers everything the DP result depends on: the graph's
   shape (node/arc counts guard against a rebuilt graph renumbering a
   different cone onto the same ids), the cone's identity (key), its
   member nodes, and every internal arc with its current max-corner
   delay bits. Early-corner delays are exactly [derate *. max] under the
   same config, so hashing the max corner covers both. [mark] must hold
   exactly the members. *)
let content_hash timer mark members count ~key:k =
  let g = Timer.graph timer in
  let istart, iarcs = Graph.csr_in g in
  let ostart, oarcs = Graph.csr_out g in
  let tails = Graph.arc_tails g and heads = Graph.arc_heads g in
  let forward = key_forward k in
  let h =
    ref
      (Fnv.mix_float
         (Fnv.mix_int (Fnv.mix_int (Fnv.mix_int Fnv.basis k) (Graph.num_nodes g)) (Graph.num_arcs g))
         (Timer.config timer).Timer.early_derate)
  in
  for i = 0 to count - 1 do
    let n = Array.unsafe_get members i in
    h := Fnv.mix_int !h n;
    if forward then
      for j = Array.unsafe_get istart n to Array.unsafe_get istart (n + 1) - 1 do
        let a = Array.unsafe_get iarcs j in
        if Mark.is_marked mark (Array.unsafe_get tails a) then
          h := Fnv.mix_float (Fnv.mix_int !h a) (Timer.arc_delay timer Timer.Late a)
      done
    else
      for j = Array.unsafe_get ostart n to Array.unsafe_get ostart (n + 1) - 1 do
        let a = Array.unsafe_get oarcs j in
        if Mark.is_marked mark (Array.unsafe_get heads a) then
          h := Fnv.mix_float (Fnv.mix_int !h a) (Timer.arc_delay timer Timer.Late a)
      done
  done;
  !h

(* ------------------------------------------------------------------ *)
(* Lookup tiers (worker-safe)                                          *)

let probe t ~key = Hashtbl.find t.tbl key

let stamp_fresh _t timer e =
  let snap = e.e_snap in
  if snap < 0 then false
  else begin
    let members = e.e_members in
    let n = Array.length members in
    let ok = ref true in
    let i = ref 0 in
    while !ok && !i < n do
      if Timer.delay_stamp timer (Array.unsafe_get members !i) > snap then ok := false;
      incr i
    done;
    !ok
  end

let revalidate _t timer ctx e =
  let mark = Timer.ctx_mark ctx in
  Mark.reset mark;
  Array.iter (fun n -> Mark.mark mark n) e.e_members;
  let h = content_hash timer mark e.e_members (Array.length e.e_members) ~key:e.e_key in
  if Int64.equal h e.e_hash then begin
    e.e_snap <- Timer.delay_gen timer;
    true
  end
  else false

let make timer ctx ~key:k ~results ~visited =
  let count = Timer.ctx_member_count ctx in
  let members = Array.sub (Timer.ctx_members ctx) 0 count in
  let n = List.length results in
  let nodes = Array.make n 0 in
  let delays = Array.make n 0.0 in
  List.iteri
    (fun i (node, d) ->
      nodes.(i) <- node;
      delays.(i) <- d)
    results;
  let hash = content_hash timer (Timer.ctx_mark ctx) members count ~key:k in
  let rec e =
    {
      e_key = k;
      e_snap = Timer.delay_gen timer;
      e_hash = hash;
      e_members = members;
      e_nodes = nodes;
      e_delays = delays;
      e_visited = visited;
      e_bytes = footprint ~members:count ~ifaces:n;
      e_prev = e;
      e_next = e;
      e_linked = false;
    }
  in
  e

let interface e =
  let acc = ref [] in
  for i = Array.length e.e_nodes - 1 downto 0 do
    acc := (Array.unsafe_get e.e_nodes i, Array.unsafe_get e.e_delays i) :: !acc
  done;
  !acc

let visited e = e.e_visited
let entry_bytes e = e.e_bytes

(* ------------------------------------------------------------------ *)
(* Accounting                                                          *)

let note_hit t ~rehash ~seconds =
  t.n_hits <- t.n_hits + 1;
  Obs.incr t.o_hit;
  if rehash then begin
    t.n_rehash <- t.n_rehash + 1;
    Obs.incr t.o_rehash
  end;
  Histo.observe t.h_hit seconds

let note_miss t ~seconds =
  t.n_misses <- t.n_misses + 1;
  Obs.incr t.o_miss;
  Histo.observe t.h_miss seconds

let hits t = t.n_hits
let rehash_hits t = t.n_rehash
let misses t = t.n_misses
let evictions t = t.n_evict
let entries t = Hashtbl.length t.tbl
let bytes t = t.t_bytes
let max_bytes t = t.t_max_bytes

(* ------------------------------------------------------------------ *)
(* Rebinding                                                           *)

(* A cone stored against one graph is only plausible against another
   when every stored id is still a node, the root is still a source /
   endpoint of the stored direction, and every interface node is still
   an interface of that direction. Survivors keep their model but lose
   stamp trust; the content hash (which covers node and arc ids and the
   graph shape) is the real arbiter on their next lookup. *)
let plausible g e =
  let n = Graph.num_nodes g in
  let root = key_root e.e_key in
  let forward = key_forward e.e_key in
  let ok = ref (root >= 0 && root < n) in
  !ok
  && (if forward then Graph.is_source g root else Graph.is_endpoint g root)
  &&
  (Array.iter (fun m -> if m < 0 || m >= n then ok := false) e.e_members;
   Array.iter
     (fun m ->
       if m < 0 || m >= n then ok := false
       else if forward then begin
         if not (Graph.is_endpoint g m) then ok := false
       end
       else if not (Graph.is_source g m) then ok := false)
     e.e_nodes;
   !ok)

let bind t timer =
  let id = Timer.timer_id timer in
  if t.bound <> id then begin
    let was_bound = t.bound <> 0 in
    t.bound <- id;
    if was_bound || Hashtbl.length t.tbl > 0 then begin
      let g = Timer.graph timer in
      let all = Hashtbl.fold (fun _ e acc -> e :: acc) t.tbl [] in
      List.iter
        (fun e ->
          if plausible g e then e.e_snap <- -1
          else begin
            drop t e;
            t.n_evict <- t.n_evict + 1;
            Obs.incr t.o_evict
          end)
        all
    end
  end

(* ------------------------------------------------------------------ *)
(* Persistence                                                         *)

type entry_snap = {
  cs_key : int;
  cs_hash : int64;
  cs_visited : int;
  cs_members : int array;
  cs_nodes : int array;
  cs_delays : float array;
}

let snapshot t =
  (* walk LRU -> MRU so restore's sequential pushes rebuild recency *)
  let acc = ref [] in
  let e = ref t.sent.e_prev in
  while !e != t.sent do
    let x = !e in
    acc :=
      {
        cs_key = x.e_key;
        cs_hash = x.e_hash;
        cs_visited = x.e_visited;
        cs_members = Array.copy x.e_members;
        cs_nodes = Array.copy x.e_nodes;
        cs_delays = Array.copy x.e_delays;
      }
      :: !acc;
    e := x.e_prev
  done;
  List.rev !acc

let restore t snaps =
  t.bound <- 0;
  List.iter
    (fun s ->
      let rec e =
        {
          e_key = s.cs_key;
          e_snap = -1; (* checkpoints never earn stamp trust directly *)
          e_hash = s.cs_hash;
          e_members = s.cs_members;
          e_nodes = s.cs_nodes;
          e_delays = s.cs_delays;
          e_visited = s.cs_visited;
          e_bytes = footprint ~members:(Array.length s.cs_members) ~ifaces:(Array.length s.cs_nodes);
          e_prev = e;
          e_next = e;
          e_linked = false;
        }
      in
      store t e)
    snaps
