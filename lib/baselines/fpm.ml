module Timer = Css_sta.Timer
module Design = Css_netlist.Design
module Extract = Css_seqgraph.Extract
module Vertex = Css_seqgraph.Vertex
module Seq_graph = Css_seqgraph.Seq_graph
module Bounds = Css_core.Bounds
module Obs = Css_util.Obs

type result = {
  target_latency : float array;
  sweeps : int;
  vertices : Vertex.t;
}

type config = {
  max_sweeps : int;
  eps : float;
}

let default_config = { max_sweeps = 50; eps = 1e-6 }

let run ?(config = default_config) ?(obs = Obs.null) ?pool timer =
  let design = Timer.design timer in
  let verts = Vertex.of_design design in
  let o_sweeps = Obs.counter obs "fpm.sweeps" in
  let eng = Extract.run ~obs ?pool ~engine:Extract.Full timer verts ~corner:Timer.Early in
  let graph = Extract.graph eng and stats = Extract.stats eng in
  let n = Vertex.num verts in
  (* Static caps, read once at extraction time — FPM does not refresh
     them, unlike the iterative algorithm. *)
  let cap = Array.init n (fun v -> Bounds.hard_cap timer verts Timer.Early v) in
  let assigned = Array.make n 0.0 in
  let fixed v = Vertex.is_super verts v in
  (* Jacobi-style relaxation on the static graph: each sweep raises every
     violated edge's destination (the launch FF) just enough, capped;
     weights follow Eq. (10). *)
  let sweeps = ref 0 in
  let continue_ = ref true in
  while !continue_ && !sweeps < config.max_sweeps do
    incr sweeps;
    Obs.incr o_sweeps;
    let delta = Array.make n 0.0 in
    Seq_graph.iter_edges graph (fun id ->
        let w = Seq_graph.weight graph id in
        let d = Seq_graph.dst graph id in
        if w < -.config.eps && not (fixed d) then begin
          let need = -.w in
          let room = Float.max 0.0 (cap.(d) -. assigned.(d)) in
          let want = Float.min need room in
          if want > delta.(d) then delta.(d) <- want
        end);
    let moved = Array.exists (fun d -> d > config.eps) delta in
    if moved then begin
      for v = 0 to n - 1 do
        assigned.(v) <- assigned.(v) +. delta.(v)
      done;
      Seq_graph.apply_latency_delta graph delta;
      if Obs.enabled obs then
        Obs.snapshot obs ~label:"fpm.sweep"
          [
            ("sweep", Obs.Json.Int !sweeps);
            ( "max_delta",
              Obs.Json.Float (Array.fold_left Float.max 0.0 delta) );
          ]
    end
    else continue_ := false
  done;
  (* Apply the predictive skews and refresh timing once. *)
  let changed = ref [] in
  for v = 0 to n - 1 do
    if assigned.(v) > 0.0 then
      match Vertex.ff_of verts v with
      | Some ff ->
        Design.set_scheduled_latency design ff (Design.scheduled_latency design ff +. assigned.(v));
        changed := ff :: !changed
      | None -> ()
  done;
  Timer.update_latencies timer !changed;
  ({ target_latency = assigned; sweeps = !sweeps; vertices = verts }, stats)
