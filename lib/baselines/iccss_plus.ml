module Extract = Css_seqgraph.Extract
module Vertex = Css_seqgraph.Vertex
module Scheduler = Css_core.Scheduler
module Obs = Css_util.Obs

let extraction ?(obs = Obs.null) ?pool ?cache timer ~corner =
  let verts = Vertex.of_design (Css_sta.Timer.design timer) in
  let engine = Extract.run ~obs ?pool ?cache ~engine:Extract.Iccss timer verts ~corner in
  let extraction =
    {
      Scheduler.extract = (fun () -> Extract.round engine);
      graph = Extract.graph engine;
      on_cap_hit =
        (fun v ->
          match Vertex.ff_of verts v with
          | Some ff -> ignore (Extract.constraint_edges engine ff)
          | None -> ());
    }
  in
  (extraction, Extract.stats engine)

let run ?config ?(obs = Obs.null) ?pool ?cache timer ~corner =
  let ext, stats = extraction ~obs ?pool ?cache timer ~corner in
  let result = Scheduler.run ?config ~obs timer ext in
  (result, stats)
