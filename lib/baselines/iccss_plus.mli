(** IC-CSS+ — the modified incremental clock skew scheduling baseline
    (Section III-E).

    Albrecht's IC-CSS with the paper's three modifications: (i) cycle
    latency calculation instead of the minimum-period termination, (ii)
    constraint-edge extraction when a latency hits its Eq. (11) cap, and
    (iii) the same two-pass latency calculation as the proposed
    algorithm. The shared {!Css_core.Scheduler} supplies (i) and (iii);
    this module supplies the callback extraction — all outgoing edges of
    every Eq. (8)-critical vertex — and charges (ii) through the
    scheduler's cap hook. The extraction statistics therefore reflect the
    over-extraction the paper measures against. *)

(** [extraction ?obs timer ~corner] is the baseline's extraction engine;
    [obs] feeds the [extract.iccss.*] counters (including
    [constraint_edges], the modification-(ii) cost). *)
val extraction :
  ?obs:Css_util.Obs.t ->
  ?pool:Css_util.Pool.t ->
  ?cache:Css_cache.Macromodel.t ->
  Css_sta.Timer.t ->
  corner:Css_sta.Timer.corner ->
  Css_core.Scheduler.extraction * Css_seqgraph.Extract.stats

(** [run ?config ?obs timer ~corner] executes the baseline end to end
    under the same scheduler instrumentation as the paper's engine, so
    per-iteration comparisons are apples-to-apples. *)
val run :
  ?config:Css_core.Scheduler.config ->
  ?obs:Css_util.Obs.t ->
  ?pool:Css_util.Pool.t ->
  ?cache:Css_cache.Macromodel.t ->
  Css_sta.Timer.t ->
  corner:Css_sta.Timer.corner ->
  Css_core.Scheduler.result * Css_seqgraph.Extract.stats
