(** FPM — the Fast Predictive Useful Skew Methodology baseline (Kim et
    al., DAC 2017), reconstructed for comparison.

    FPM computes *predictive* skews for hold (early) violations in one
    shot: it extracts the full early sequential graph once, then relaxes
    latency assignments over the static graph (no timing propagation
    between sweeps — that is what makes it "predictive" and also what
    leaves residual violations), bounded by the launch-side late slack
    read at extraction time. Extraction of the complete graph is the
    dominating cost, which is why the paper reports a 27x speedup of its
    own engine over FPM. *)

type result = {
  target_latency : float array;  (** per sequential-graph vertex *)
  sweeps : int;  (** relaxation sweeps until fixpoint *)
  vertices : Css_seqgraph.Vertex.t;  (** the vertex registry indexing [target_latency] *)
}

type config = {
  max_sweeps : int;  (** relaxation sweep cap (default 50) *)
  eps : float;
}

val default_config : config

(** [run ?config ?obs timer] computes predictive early skews, applies
    them to the design as scheduled latencies and re-propagates the
    timer. Returns the result and the (full-graph) extraction
    statistics. [obs] receives the [extract.full.*] counters (FPM's
    dominating cost — the whole-graph extraction the paper's engine
    avoids), the [fpm.sweeps] counter, and one ["fpm.sweep"] snapshot
    per relaxation sweep. *)
val run :
  ?config:config ->
  ?obs:Css_util.Obs.t ->
  ?pool:Css_util.Pool.t ->
  Css_sta.Timer.t ->
  result * Css_seqgraph.Extract.stats
