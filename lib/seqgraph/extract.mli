(** Sequential-graph extraction engines.

    Three engines populate a {!Seq_graph.t} from the gate-level timing
    graph, reproducing the paper's comparison:

    - {!Full}: exhaustive extraction — every launcher's fan-out cone.
      The reference engine; [O(n*m')].
    - {!Iccss}: Albrecht's callback extraction — a one-time global
      outgoing-delay bound per vertex, and on criticality (Eq. 8) *all*
      outgoing edges of the vertex are materialized, essential or not.
    - {!Essential}: the paper's Update-Extract mechanism — after each
      timing propagation, only endpoints whose violation is not yet
      explained by already-extracted edges are walked, and only
      negative-slack edges are materialized. [O(k*m')].

    All engines share a {!stats} record; [edges_extracted] is the number
    the paper's Table I reports as "#Extract Edge".

    Every engine also accepts an [?obs] context (default
    {!Css_util.Obs.null}) and reports into the [extract.<engine>.*]
    counter namespace: [edges] (materialized), [candidate_edges] (cone
    results examined, kept or not — for {!Essential} the gap between the
    two is the over-extraction avoided), [endpoints_walked],
    [cone_nodes] and [rounds]. See [docs/OBSERVABILITY.md]. *)

type stats = {
  mutable edges_extracted : int;  (** edges materialized into the graph *)
  mutable cone_nodes : int;  (** gate-level nodes visited while extracting *)
  mutable rounds : int;  (** extraction rounds performed *)
}

val fresh_stats : unit -> stats

(** {1 Full extraction} *)

module Full : sig
  (** [extract ?obs timer verts ~corner] builds the complete sequential
      graph for one corner — every launcher's fan-out cone, the [O(n*m')]
      reference the paper's Section II measures both baselines against. *)
  val extract :
    ?obs:Css_util.Obs.t ->
    Css_sta.Timer.t ->
    Vertex.t ->
    corner:Css_sta.Timer.corner ->
    Seq_graph.t * stats
end

(** {1 The paper's iterative essential extraction (Section III-B)} *)

module Essential : sig
  type t

  (** [create ?obs timer verts ~corner] starts with an empty graph; the
      partial graph then only ever grows across {!round} calls — the
      "dynamic sequential graph" of the paper's title. *)
  val create :
    ?obs:Css_util.Obs.t -> Css_sta.Timer.t -> Vertex.t -> corner:Css_sta.Timer.corner -> t

  val graph : t -> Seq_graph.t
  val stats : t -> stats

  (** [round ?limit t] runs one Update-Extract round against the timer's
      current state: every violated endpoint whose worst slack is not
      explained by an already-extracted edge is cone-walked (at most
      [limit] of them — the DESIGN.md A1 ablation; default unlimited),
      and the negative-slack edges found are added. Returns the number of
      edges added. Call after each timing propagation. *)
  val round : ?limit:int -> t -> int
end

(** {1 IC-CSS callback extraction (Albrecht, adapted)} *)

module Iccss : sig
  type t

  (** [create ?obs timer verts ~corner] computes the one-time global
      outgoing-delay (late) / incoming-delay (early) bound used by the
      criticality test of Eq. (8). *)
  val create :
    ?obs:Css_util.Obs.t -> Css_sta.Timer.t -> Vertex.t -> corner:Css_sta.Timer.corner -> t

  val graph : t -> Seq_graph.t
  val stats : t -> stats

  (** [extract_critical t] fires the callback for every vertex that is
      critical under current latencies and not yet expanded: *all* of its
      outgoing sequential edges are materialized. Returns the number of
      vertices newly expanded. *)
  val extract_critical : t -> int

  (** [extract_constraint_edges t ff] fires the Section III-E(ii)
      callback: all cross-corner constraint edges of [ff] (its incoming
      early paths when optimizing late, and vice versa) are enumerated and
      charged to the extraction cost. Returns the number of edges seen. *)
  val extract_constraint_edges : t -> Css_netlist.Design.cell_id -> int
end
