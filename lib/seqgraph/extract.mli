(** Sequential-graph extraction engines behind one entry point.

    {!run} populates a {!Seq_graph.t} from the gate-level timing graph
    with one of three engines, reproducing the paper's comparison:

    - {!Full}: exhaustive extraction — every launcher's fan-out cone.
      The reference engine; [O(n*m')]. Extraction happens inside {!run};
      the first {!round} reports the edge count, later rounds return 0.
    - {!Iccss}: Albrecht's callback extraction — a one-time global
      outgoing-delay bound per vertex, and on criticality (Eq. 8) *all*
      outgoing edges of the vertex are materialized, essential or not.
    - {!Essential}: the paper's Update-Extract mechanism — after each
      timing propagation, only endpoints whose violation is not yet
      explained by already-extracted edges are walked, and only
      negative-slack edges are materialized. [O(k*m')].

    {2 Parallel extraction}

    Pass [?pool] and every round's cone walks are sharded across the
    pool's worker domains. Each worker walks through a private
    {!Css_sta.Timer.cone_ctx} and returns per-item candidate buffers;
    the submitting thread then merges them into the graph {e in item
    order}, so the resulting graph — edge ids, insertion order, weights
    — and all stats and counters are bit-identical to the sequential
    path at any worker count. The selection phases (Essential's
    violated-endpoint cut, IC-CSS's criticality test) stay sequential;
    they read only pre-round state, so the parallel round selects
    exactly the sequential set.

    {2 Stats and observability}

    All engines share a {!stats} record; [edges_extracted] is the number
    the paper's Table I reports as "#Extract Edge". The record is
    {b single-writer}: only the thread driving {!round} mutates it (in
    the deterministic merge) — pool workers accumulate privately and
    never touch it, nor the [?obs] context (counters are flushed once
    per round by the submitter, so {!Css_util.Obs.null} stays
    allocation-free). Engines report into the [extract.<engine>.*]
    counter namespace: [edges] (materialized), [candidate_edges] (cone
    results examined, kept or not — for {!Essential} the gap between the
    two is the over-extraction avoided), [endpoints_walked],
    [cone_nodes], [rounds] and [cone_walks] (real cone traversals — a
    cache hit serves an endpoint without a walk, so
    [endpoints_walked - cone_walks] is the work the macromodel cache
    absorbed). See [docs/OBSERVABILITY.md].

    {2 The macromodel cache}

    Pass [?cache] (a {!Css_cache.Macromodel.t}) and every cone walk
    first consults the cache: a stamp- or hash-validated model replays
    the stored interface list bit-identically to a fresh walk, a miss
    walks for real and stores a new model. Workers only probe and
    validate; all cache-structure mutation (LRU order, insertion,
    eviction, counters) is committed in the deterministic merge in item
    order, so results {e and} cache state are identical at any worker
    count. The cache may be shared across engines, corners and requests
    — keys embed root, corner and direction. *)

type stats = {
  mutable edges_extracted : int;  (** edges materialized into the graph *)
  mutable cone_nodes : int;  (** gate-level nodes visited while extracting *)
  mutable rounds : int;  (** extraction rounds performed *)
}

val fresh_stats : unit -> stats

(** {1 The unified engine API} *)

(** Which extraction strategy {!run} instantiates. *)
type engine = Full | Essential | Iccss

(** [engine_name e] is ["full"], ["essential"] or ["iccss"] — the
    [extract.<engine>.*] counter namespace component. *)
val engine_name : engine -> string

(** A live extraction engine: a growing sequential graph plus the
    engine-specific incremental state ({!Essential}'s known-weight
    tests, {!Iccss}'s bound and expansion flags). *)
type t

(** [run ?obs ?pool ?cache ~engine timer verts ~corner] instantiates
    [engine] over [timer]'s design at [corner], starting from an empty
    graph (for [Full], the one-time exhaustive extraction happens here).
    [?pool] parallelizes the cone walks as described above; the timer
    must not be mutated while a round is in flight. [?cache] attaches a
    macromodel cache (it is {!Css_cache.Macromodel.bind}-ed to [timer]
    first, so stale entries from another timer are demoted or dropped
    before any lookup). *)
val run :
  ?obs:Css_util.Obs.t ->
  ?pool:Css_util.Pool.t ->
  ?cache:Css_cache.Macromodel.t ->
  engine:engine ->
  Css_sta.Timer.t ->
  Vertex.t ->
  corner:Css_sta.Timer.corner ->
  t

(** [round ?limit t] performs one extraction round against the timer's
    current state and returns the work done:

    - [Essential]: every violated endpoint whose worst slack is not
      explained by an already-extracted edge is cone-walked (at most
      [limit] of them — the DESIGN.md A1 ablation; default unlimited),
      and the negative-slack edges found are added. Returns edges added.
      Call after each timing propagation.
    - [Iccss]: fires the callback for every vertex that is critical
      under current latencies and not yet expanded — *all* of its
      outgoing sequential edges are materialized. Returns the number of
      vertices newly expanded ([limit] is ignored).
    - [Full]: the graph was built by {!run}; the first call returns the
      edge count, subsequent calls return 0 ([limit] is ignored). *)
val round : ?limit:int -> t -> int

(** [constraint_edges t ff] fires IC-CSS's Section III-E(ii) callback:
    all cross-corner constraint edges of [ff] (its incoming early paths
    when optimizing late, and vice versa) are enumerated and charged to
    the extraction cost. Returns the number of edges seen. Only
    meaningful for the [Iccss] engine. *)
val constraint_edges : t -> Css_netlist.Design.cell_id -> int

val graph : t -> Seq_graph.t
val stats : t -> stats
val engine : t -> engine

(** [set_pool t pool] swaps the worker pool (and the per-worker walk
    scratch) an engine shards its cone walks over — the flow's
    budget-degradation ladder sheds domains mid-run with this. Because
    results are bit-identical at any worker count, the swap is
    observable only as wall-clock. Must not be called while a round is
    in flight. *)
val set_pool : t -> Css_util.Pool.t option -> unit

(** {1 Durable snapshots}

    A {!snapshot} captures everything that makes a live engine's future
    behaviour differ from a freshly created one — the partial graph's
    edges in insertion order (insertion order defines the solvers' input
    order, hence bit-determinism), the stats accounting, [Full]'s
    pending first-round count, and IC-CSS's one-time bound and expansion
    flags (restored, never recomputed: the bound reads arc delays, which
    change when the flow resizes cells). {!Css_flow.Persist} serializes
    these to disk. *)

type edge_snap = {
  es_launcher : Css_sta.Graph.launcher;
  es_endpoint : Css_sta.Graph.endpoint;
  es_delay : float;
  es_weight : float;
}

type snapshot = {
  sn_engine : engine;
  sn_edges : edge_snap list;  (** insertion order *)
  sn_edges_extracted : int;
  sn_cone_nodes : int;
  sn_rounds : int;
  sn_pending_first : int;
  sn_bound : float array;  (** [Iccss] only, [[||]] otherwise *)
  sn_expanded : bool array;  (** [Iccss] only, [[||]] otherwise *)
}

val snapshot : t -> snapshot

(** [restore ?obs ?pool snap timer verts ~corner] rebuilds a live engine
    from a snapshot against a (reparsed) design's timer and vertex
    registry: replays the edges in order into a fresh graph and restores
    the engine-specific state without re-running any extraction (in
    particular [Full]'s exhaustive pass and [Iccss]'s bound DP do not
    rerun). The snapshot's dense cell/port ids must come from a design
    text round-trip of the same design ({!Css_flow.Flow.clone}
    semantics), which preserves them. *)
val restore :
  ?obs:Css_util.Obs.t ->
  ?pool:Css_util.Pool.t ->
  ?cache:Css_cache.Macromodel.t ->
  snapshot ->
  Css_sta.Timer.t ->
  Vertex.t ->
  corner:Css_sta.Timer.corner ->
  t
