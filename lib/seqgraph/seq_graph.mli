(** The (partial) sequential graph [G = (V, E', w)].

    Edges are stored in the *scheduling orientation*: raising the latency
    of an edge's destination by [delta] raises the edge weight (slack) by
    [delta], per Eq. (3). Concretely, for the late problem an edge runs
    launch FF -> capture FF with weight [s^L]; for the early problem it
    runs capture FF -> launch FF with weight [s^E]. One [t] therefore
    serves both phases with identical scheduling machinery.

    At most one edge is kept per (src, dst) pair — the minimum-slack
    timing path between the two sequential elements, which is the only
    one clock skew scheduling can act on.

    {b Storage layout.} Edges are dense ints indexing parallel columns
    (src, dst, weight, delay, encoded launcher/endpoint): the weight
    columns are flat [float array]s, so the per-iteration Eq. (10)
    update and the scheduler's negative-edge scan read unboxed floats
    with no per-edge record chasing. The timing launcher/endpoint of an
    edge is int-encoded and only materialized as a constructor by
    {!launcher} / {!endpoint}. See [docs/PERFORMANCE.md]. *)

type edge_id = int
(** Dense edge index in [0, num_edges), in insertion order. Edge ids are
    stable: edges are never removed. *)

type t

(** [create verts ~corner] is an empty graph for the given analysis
    corner. *)
val create : Vertex.t -> corner:Css_sta.Timer.corner -> t

(** [corner t] is the analysis corner the graph's scheduling orientation
    encodes (late: launch -> capture; early: capture -> launch). *)
val corner : t -> Css_sta.Timer.corner

(** [vertices t] is the vertex registry shared with the extractors. *)
val vertices : t -> Vertex.t

(** [num_edges t] is the current size of [E'] — for the paper's engine a
    small fraction of the full sequential graph (Fig. 2). O(1). *)
val num_edges : t -> int

(** {1 Edge columns}

    All accessors are O(1); [weight]/[delay] return unboxed floats from
    flat columns. *)

val src : t -> edge_id -> Vertex.id
val dst : t -> edge_id -> Vertex.id

val weight : t -> edge_id -> float
(** Current slack of the path under current latencies. *)

val delay : t -> edge_id -> float
(** Pure combinational path delay (launch pin to capture pin). *)

val set_weight : t -> edge_id -> float -> unit

(** [launcher t id] / [endpoint t id] decode the edge's timing-graph
    launcher/endpoint. O(1) but allocates the constructor — hot loops
    should work on vertex ids instead. *)
val launcher : t -> edge_id -> Css_sta.Graph.launcher

val endpoint : t -> edge_id -> Css_sta.Graph.endpoint

(** {1 Construction and lookup} *)

(** [add_edge t ~launcher ~endpoint ~delay ~weight] inserts the edge in
    scheduling orientation. A re-extraction of the *same* timing path
    refreshes the stored weight and delay (the new values are the current
    truth); a different path collapsing onto the same vertex pair (port
    paths through a supernode) only replaces a smaller-weight entry.
    Returns the edge id. Amortized O(1). *)
val add_edge :
  t ->
  launcher:Css_sta.Graph.launcher ->
  endpoint:Css_sta.Graph.endpoint ->
  delay:float ->
  weight:float ->
  edge_id

(** [find t ~src ~dst] is the stored edge between the pair, if any. O(1);
    allocates the option. *)
val find : t -> src:Vertex.id -> dst:Vertex.id -> edge_id option

(** [iter_edges t f] applies [f] to every edge id in insertion order
    (the scheduler's per-iteration walk over [E'], the [m'] in its
    O(k·m') bound). Allocation-free apart from what [f] does. *)
val iter_edges : t -> (edge_id -> unit) -> unit

(** [edge_ids t] lists the edge ids in insertion order. O(edges). *)
val edge_ids : t -> edge_id list

(** [out_edges t v] / [in_edges t v] are [v]'s edges in scheduling
    orientation, in insertion order — [out_edges] drives the Eq. (6)
    out-weight check during arborescence construction. O(degree). *)
val out_edges : t -> Vertex.id -> edge_id list

val in_edges : t -> Vertex.id -> edge_id list

(** [min_weight_from_endpoint t e] is the smallest current weight among
    stored edges whose timing endpoint is [e] ([infinity] when none) —
    used to decide whether a violated endpoint needs re-extraction.
    O(edges sharing the endpoint). *)
val min_weight_from_endpoint : t -> Css_sta.Graph.endpoint -> float

(** [apply_latency_delta t deltas] performs the Eq. (10) update:
    [w += deltas.(dst) - deltas.(src)] on every edge ([deltas] is indexed
    by vertex id). O(edges), allocation-free. *)
val apply_latency_delta : t -> float array -> unit

(** [recompute_weight t timer id] re-derives the edge's weight from the
    timer's current latencies via Eq. (1)/(2) — the reference the
    Eq. (10) shortcut is property-tested against. Does not store it. *)
val recompute_weight : t -> Css_sta.Timer.t -> edge_id -> float

(** [refresh_weights t timer] overwrites every edge weight with its
    {!recompute_weight} value — the scheduler's [verify_weights] mode and
    the flow's post-rollback resynchronization. O(edges). *)
val refresh_weights : t -> Css_sta.Timer.t -> unit

(** {1 Packed views}

    The core solvers (cycle detection, arborescence, two-pass
    assignment) consume an immutable packed copy of an edge subset —
    three parallel arrays they can index without touching the graph or
    allocating per edge. *)

type view = {
  v_n : int;  (** number of selected edges *)
  v_src : int array;  (** tail vertex per selected edge *)
  v_dst : int array;  (** head vertex per selected edge *)
  v_w : float array;  (** weight per selected edge, flat floats *)
}

(** [select t pred] packs the edges satisfying [pred] (given the edge
    id), in insertion order. O(edges). *)
val select : t -> (edge_id -> bool) -> view

(** [view_of_list triples] packs explicit [(src, dst, weight)] triples —
    solver tests construct inputs without building a graph. *)
val view_of_list : (Vertex.id * Vertex.id * float) list -> view
