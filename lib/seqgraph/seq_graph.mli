(** The (partial) sequential graph [G = (V, E', w)].

    Edges are stored in the *scheduling orientation*: raising the latency
    of an edge's destination by [delta] raises the edge weight (slack) by
    [delta], per Eq. (3). Concretely, for the late problem an edge runs
    launch FF -> capture FF with weight [s^L]; for the early problem it
    runs capture FF -> launch FF with weight [s^E]. One [t] therefore
    serves both phases with identical scheduling machinery.

    At most one edge is kept per (src, dst) pair — the minimum-slack
    timing path between the two sequential elements, which is the only
    one clock skew scheduling can act on. *)

type edge = {
  id : int;
  src : Vertex.id;
  dst : Vertex.id;
  mutable weight : float;  (** current slack of the path under current latencies *)
  mutable delay : float;  (** pure combinational path delay (launch pin to capture pin) *)
  launcher : Css_sta.Graph.launcher;
  endpoint : Css_sta.Graph.endpoint;
}

type t

(** [create verts ~corner] is an empty graph for the given analysis
    corner. *)
val create : Vertex.t -> corner:Css_sta.Timer.corner -> t

(** [corner t] is the analysis corner the graph's scheduling orientation
    encodes (late: launch -> capture; early: capture -> launch). *)
val corner : t -> Css_sta.Timer.corner

(** [vertices t] is the vertex registry shared with the extractors. *)
val vertices : t -> Vertex.t

(** [num_edges t] is the current size of [E'] — for the paper's engine a
    small fraction of the full sequential graph (Fig. 2). *)
val num_edges : t -> int

(** [add_edge t ~launcher ~endpoint ~delay ~weight] inserts the edge in
    scheduling orientation. A re-extraction of the *same* timing path
    refreshes the stored weight and delay (the new values are the current
    truth); a different path collapsing onto the same vertex pair (port
    paths through a supernode) only replaces a smaller-weight entry.
    Returns the edge. *)
val add_edge :
  t ->
  launcher:Css_sta.Graph.launcher ->
  endpoint:Css_sta.Graph.endpoint ->
  delay:float ->
  weight:float ->
  edge

(** [find t ~src ~dst] is the stored edge between the pair, if any. *)
val find : t -> src:Vertex.id -> dst:Vertex.id -> edge option

(** [iter_edges t f] applies [f] to every stored edge (the scheduler's
    per-iteration walk over [E'], the [m'] in its O(k·m') bound). *)
val iter_edges : t -> (edge -> unit) -> unit

(** [edges t] lists the stored edges (unspecified order). *)
val edges : t -> edge list

(** [out_edges t v] / [in_edges t v] are [v]'s edges in scheduling
    orientation — [out_edges] drives the Eq. (6) out-weight check during
    arborescence construction. *)
val out_edges : t -> Vertex.id -> edge list

val in_edges : t -> Vertex.id -> edge list

(** [min_weight_from_endpoint t e] is the smallest current weight among
    stored edges whose timing endpoint is [e] ([infinity] when none) —
    used to decide whether a violated endpoint needs re-extraction. *)
val min_weight_from_endpoint : t -> Css_sta.Graph.endpoint -> float

(** [apply_latency_delta t deltas] performs the Eq. (10) update:
    [w += deltas.(dst) - deltas.(src)] on every edge ([deltas] is indexed
    by vertex id). *)
val apply_latency_delta : t -> float array -> unit

(** [recompute_weight t timer e] re-derives [e.weight] from the timer's
    current latencies via Eq. (1)/(2) — the reference the Eq. (10)
    shortcut is property-tested against. *)
val recompute_weight : t -> Css_sta.Timer.t -> edge -> float
