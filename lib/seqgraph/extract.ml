module Timer = Css_sta.Timer
module Graph = Css_sta.Graph
module Design = Css_netlist.Design
module Cell = Css_liberty.Cell
module Obs = Css_util.Obs
module Histo = Css_util.Histo
module Pool = Css_util.Pool
module Wall_clock = Css_util.Wall_clock
module M = Css_cache.Macromodel

type stats = {
  mutable edges_extracted : int;
  mutable cone_nodes : int;
  mutable rounds : int;
}

let fresh_stats () = { edges_extracted = 0; cone_nodes = 0; rounds = 0 }

type engine = Full | Essential | Iccss

let engine_name = function Full -> "full" | Essential -> "essential" | Iccss -> "iccss"

(* Per-engine observability handles, resolved once per engine instance so
   the extraction loops bump counters without name lookups. *)
type obs_counters = {
  o_edges : Obs.counter;  (* edges materialized into the graph *)
  o_candidates : Obs.counter;  (* cone results examined (kept or not) *)
  o_endpoints : Obs.counter;  (* endpoints / vertices cone-walked *)
  o_cone : Obs.counter;
  o_rounds : Obs.counter;
  o_walks : Obs.counter;  (* real cone traversals (cache misses or no cache) *)
  (* Cone-walk size distribution (visited nodes per walked endpoint),
     observed during the deterministic merge in item order — identical
     at any worker count. [Histo.dummy] when observability is off. *)
  h_cone : Histo.t;
}

let resolve_obs obs engine =
  {
    o_edges = Obs.counter obs (Printf.sprintf "extract.%s.edges" engine);
    o_candidates = Obs.counter obs (Printf.sprintf "extract.%s.candidate_edges" engine);
    o_endpoints = Obs.counter obs (Printf.sprintf "extract.%s.endpoints_walked" engine);
    o_cone = Obs.counter obs (Printf.sprintf "extract.%s.cone_nodes" engine);
    o_rounds = Obs.counter obs (Printf.sprintf "extract.%s.rounds" engine);
    o_walks = Obs.counter obs (Printf.sprintf "extract.%s.cone_walks" engine);
    h_cone = Obs.histogram obs (Printf.sprintf "extract.%s.cone_visited" engine);
  }

(* One candidate sequential edge produced by a worker's cone walk. *)
type cand = {
  c_launcher : Graph.launcher;
  c_endpoint : Graph.endpoint;
  c_delay : float;
  c_weight : float;
}

(* A worker's verdict on one cone lookup, applied merge-side in item
   order so the LRU order, the counters and the latency histograms come
   out identical at any worker count. *)
type note =
  | N_touch of M.entry * float  (* stamp-tier hit, lookup seconds *)
  | N_rehash of M.entry * float  (* hash-tier hit *)
  | N_store of M.entry * float  (* miss: commit this fresh model *)

(* The result of cone-walking one work item: its candidates in exactly
   the order the sequential loop would enumerate them, plus the visited
   node count for deferred stats accounting, the number of real cone
   traversals performed (0 when every cone hit the cache), and the cache
   notes in cone order. Workers only build shards; all graph/stats/Obs/
   cache-structure mutation happens in the submitter's merge. *)
type shard = {
  sh_cands : cand list;
  sh_visited : int;
  sh_walks : int;
  sh_notes : note list;
}

type t = {
  kind : engine;
  timer : Timer.t;
  verts : Vertex.t;
  graph : Seq_graph.t;
  (* Single-writer: mutated only by the thread driving [round] (the
     deterministic merge); never from pool workers. *)
  stats : stats;
  oc : obs_counters;
  (* Mutable so the flow's degradation ladder can shed worker domains
     mid-run ([set_pool]); determinism makes this observable only as
     wall-clock. *)
  mutable pool : Pool.t option;
  mutable ctxs : Timer.cone_ctx array;  (* one private walk scratch per worker *)
  (* Cone macromodel cache, shared across engines/corners/requests by
     the owner (session, oracle, bench). Workers only probe/validate;
     the merge commits (see the concurrency contract in macromodel.mli). *)
  cache : M.t option;
  mutable pending_first : int;  (* Full: work count reported by the first round *)
  (* IC-CSS state *)
  bound : float array;  (* one-time extreme outgoing/incoming path delay *)
  expanded : bool array;
  o_constraint : Obs.counter;  (* Section III-E(ii) constraint edges *)
}

let graph t = t.graph
let stats t = t.stats
let engine t = t.kind

let worker_ctxs timer pool =
  Array.init (match pool with Some p -> Pool.jobs p | None -> 1) (fun _ -> Timer.cone_ctx timer)

let set_pool t pool =
  t.pool <- pool;
  t.ctxs <- worker_ctxs t.timer pool

(* Run [f ctx i] for i in [0, n), each item writing only its own result
   slot and its worker's private scratch. Slot order — not completion
   order — defines the merge order, so the output is identical at any
   worker count, pool or no pool. *)
let walk t ~n (f : Timer.cone_ctx -> int -> shard) : shard array =
  match t.pool with
  | Some pool -> Pool.map pool ~n (fun ~worker i -> f t.ctxs.(worker) i)
  | None -> Array.init n (fun i -> f t.ctxs.(0) i)

(* Walk [root]'s cone through the cache when one is attached. A hit
   replays the stored interface list — bit-identical to the walk it
   memoized — without touching the graph; a miss walks for real and
   packages a fresh model. Cache commits are deferred as notes: workers
   write nothing but their own entry's validation fields (distinct roots
   per round make those writes race-free). *)
let cone_cached t ctx ~corner ~forward root notes =
  match t.cache with
  | None ->
    let raw, visited = Timer.cone_nodes_in ctx t.timer corner ~root ~forward in
    (raw, visited, 1)
  | Some cache ->
    let key = M.key ~root ~corner ~forward in
    let t0 = Wall_clock.now () in
    let live =
      match M.probe cache ~key with
      | exception Not_found -> None
      | e ->
        if M.stamp_fresh cache t.timer e then Some (e, false)
        else if M.revalidate cache t.timer ctx e then Some (e, true)
        else None
    in
    (match live with
    | Some (e, rehash) ->
      let dt = Wall_clock.now () -. t0 in
      notes := (if rehash then N_rehash (e, dt) else N_touch (e, dt)) :: !notes;
      (M.interface e, 0, 0)
    | None ->
      let raw, visited = Timer.cone_nodes_in ctx t.timer corner ~root ~forward in
      let e = M.make t.timer ctx ~key ~results:raw ~visited in
      notes := N_store (e, Wall_clock.now () -. t0) :: !notes;
      (raw, visited, 1))

(* Deterministic merge: fold shards in item order, inserting kept
   candidates in their sequential enumeration order and applying cache
   notes in cone order, then flush the accumulated stats and counters
   once (per-worker-flush rule: workers never touch [stats], the timer,
   the cache structure or the [Obs] context). *)
let merge ?(keep = fun _ -> true) t shards =
  let added = ref 0 and visited = ref 0 and cands = ref 0 and walks = ref 0 in
  Array.iter
    (fun sh ->
      visited := !visited + sh.sh_visited;
      walks := !walks + sh.sh_walks;
      Histo.observe_int t.oc.h_cone sh.sh_visited;
      (match t.cache with
      | None -> ()
      | Some cache ->
        List.iter
          (fun note ->
            match note with
            | N_touch (e, s) ->
              M.touch cache e;
              M.note_hit cache ~rehash:false ~seconds:s
            | N_rehash (e, s) ->
              M.touch cache e;
              M.note_hit cache ~rehash:true ~seconds:s
            | N_store (e, s) ->
              M.store cache e;
              M.note_miss cache ~seconds:s)
          sh.sh_notes);
      List.iter
        (fun c ->
          incr cands;
          if keep c then begin
            ignore
              (Seq_graph.add_edge t.graph ~launcher:c.c_launcher ~endpoint:c.c_endpoint
                 ~delay:c.c_delay ~weight:c.c_weight);
            incr added
          end)
        sh.sh_cands)
    shards;
  t.stats.edges_extracted <- t.stats.edges_extracted + !added;
  t.stats.cone_nodes <- t.stats.cone_nodes + !visited;
  Obs.add t.oc.o_edges !added;
  Obs.add t.oc.o_candidates !cands;
  Obs.add t.oc.o_cone !visited;
  Obs.add t.oc.o_walks !walks;
  Timer.note_cone_visits t.timer !visited;
  !added

(* ------------------------------------------------------------------ *)
(* Full extraction                                                     *)

let full_extract t =
  let corner = Seq_graph.corner t.graph in
  let g = Timer.graph t.timer in
  let srcs = Graph.sources g in
  let n = Array.length srcs in
  Obs.add t.oc.o_endpoints n;
  let shards =
    walk t ~n (fun ctx i ->
        let root = srcs.(i) in
        let launcher = Graph.launcher_of_node g root in
        let notes = ref [] in
        let found, visited, walks = cone_cached t ctx ~corner ~forward:true root notes in
        let cands =
          List.map
            (fun (node, delay) ->
              let endpoint = Graph.endpoint_of_node g node in
              let weight = Timer.edge_slack t.timer corner ~launcher ~endpoint ~delay in
              { c_launcher = launcher; c_endpoint = endpoint; c_delay = delay; c_weight = weight })
            found
        in
        { sh_cands = cands; sh_visited = visited; sh_walks = walks; sh_notes = !notes })
  in
  let added = merge t shards in
  t.stats.rounds <- t.stats.rounds + 1;
  Obs.incr t.oc.o_rounds;
  added

(* ------------------------------------------------------------------ *)
(* The paper's essential (Update-Extract) engine                       *)

(* A violated endpoint needs (re-)extraction when its worst slack is not
   already explained by a stored edge: either it was never walked, or a
   previously positive (unextracted) path has turned negative. The
   selection runs sequentially against the pre-round graph — each
   endpoint appears at most once in [violated_endpoints], so this
   round's insertions can never change another endpoint's test and the
   cut is the same one the fully sequential loop makes. *)
let essential_round ?(limit = max_int) t =
  t.stats.rounds <- t.stats.rounds + 1;
  Obs.incr t.oc.o_rounds;
  let corner = Seq_graph.corner t.graph in
  let selected = ref [] in
  let walked = ref 0 in
  List.iter
    (fun (endpoint, slack) ->
      let known = Seq_graph.min_weight_from_endpoint t.graph endpoint in
      if !walked < limit && slack < known -. 1e-6 then begin
        incr walked;
        selected := endpoint :: !selected
      end)
    (Timer.violated_endpoints t.timer corner);
  let selected = Array.of_list (List.rev !selected) in
  let n = Array.length selected in
  Obs.add t.oc.o_endpoints n;
  let g = Timer.graph t.timer in
  let shards =
    walk t ~n (fun ctx i ->
        let endpoint = selected.(i) in
        let root = Graph.node_of_endpoint g endpoint in
        let notes = ref [] in
        let found, visited, walks = cone_cached t ctx ~corner ~forward:false root notes in
        let cands =
          List.map
            (fun (node, delay) ->
              let launcher = Graph.launcher_of_node g node in
              let weight = Timer.edge_slack t.timer corner ~launcher ~endpoint ~delay in
              { c_launcher = launcher; c_endpoint = endpoint; c_delay = delay; c_weight = weight })
            found
        in
        { sh_cands = cands; sh_visited = visited; sh_walks = walks; sh_notes = !notes })
  in
  merge ~keep:(fun c -> c.c_weight < 0.0) t shards

(* ------------------------------------------------------------------ *)
(* IC-CSS callback extraction (Albrecht, adapted)                      *)

(* One global DP giving, per vertex, the quantity Eq. (8) tests against:
   late -> the max path delay from the vertex's launch pin to any
   endpoint; early -> the min path delay from any launch pin to the
   vertex's capture pin. Computed once, exactly as IC-CSS prescribes. *)
let compute_bound timer verts corner =
  let g = Timer.graph timer in
  let n = Graph.num_nodes g in
  let topo = Graph.topo_order g in
  let dist =
    Array.make n (match corner with Timer.Late -> neg_infinity | Timer.Early -> infinity)
  in
  (match corner with
  | Timer.Late ->
    Array.iter (fun e -> dist.(e) <- 0.0) (Graph.endpoints g);
    for i = Array.length topo - 1 downto 0 do
      let u = topo.(i) in
      if not (Graph.is_endpoint g u) then
        Graph.iter_out g u (fun a v ->
            if dist.(v) > neg_infinity then begin
              let cand = Timer.arc_delay timer Timer.Late a +. dist.(v) in
              if cand > dist.(u) then dist.(u) <- cand
            end)
    done
  | Timer.Early ->
    Array.iter (fun s -> dist.(s) <- 0.0) (Graph.sources g);
    Array.iter
      (fun v ->
        if not (Graph.is_source g v) then
          Graph.iter_in g v (fun a u ->
              if dist.(u) < infinity then begin
                let cand = dist.(u) +. Timer.arc_delay timer Timer.Early a in
                if cand < dist.(v) then dist.(v) <- cand
              end))
      topo);
  let bound =
    Array.make (Vertex.num verts)
      (match corner with Timer.Late -> neg_infinity | Timer.Early -> infinity)
  in
  let fold v cand =
    match corner with
    | Timer.Late -> if cand > bound.(v) then bound.(v) <- cand
    | Timer.Early -> if cand < bound.(v) then bound.(v) <- cand
  in
  (match corner with
  | Timer.Late ->
    Array.iter
      (fun s -> fold (Vertex.of_launcher verts (Graph.launcher_of_node g s)) dist.(s))
      (Graph.sources g)
  | Timer.Early ->
    Array.iter
      (fun e -> fold (Vertex.of_endpoint verts (Graph.endpoint_of_node g e)) dist.(e))
      (Graph.endpoints g));
  bound

let design t = Timer.design t.timer
let ref_ff_params t = Cell.ff_params (Css_liberty.Library.flip_flop (Design.library (design t)))

(* Eq. (8) adapted to the NSO problem. Albrecht's parametric search
   drives the period variable down towards the maximum mean cycle, so a
   vertex fires the callback as soon as it could become critical at any
   period the search visits; with the period fixed, the equivalent test
   gives every vertex a cushion equal to the current worst negative
   slack — the depth to which the search would descend. *)
let iccss_critical t v =
  let corner = Seq_graph.corner t.graph in
  let d = design t in
  let period = Design.clock_period d in
  let p = ref_ff_params t in
  let cushion = Float.max 0.0 (-.Timer.wns t.timer corner) in
  match corner with
  | Timer.Late ->
    t.bound.(v) > neg_infinity
    &&
    let l_u, c2q =
      match Vertex.ff_of t.verts v with
      | Some ff ->
        (Design.clock_latency d ff, (Cell.ff_params (Design.cell_master d ff)).Cell.clk_to_q)
      | None -> (0.0, 0.0)
    in
    period -. p.Cell.setup -. (l_u +. c2q +. t.bound.(v)) < cushion
  | Timer.Early ->
    t.bound.(v) < infinity
    &&
    let l_v, hold =
      match Vertex.ff_of t.verts v with
      | Some ff ->
        (Design.clock_latency d ff, (Cell.ff_params (Design.cell_master d ff)).Cell.hold)
      | None -> (0.0, 0.0)
    in
    let derate = (Timer.config t.timer).Timer.early_derate in
    (derate *. p.Cell.clk_to_q) +. t.bound.(v) -. (l_v +. hold) < cushion

(* The callback of IC-CSS: enumerate *all* outgoing sequential edges of
   the vertex — essential or not — which is exactly the over-extraction
   the paper removes. Pure collection: the worker walks through its own
   ctx and returns candidates; insertion happens in the merge. *)
let iccss_collect t ctx v =
  let corner = Seq_graph.corner t.graph in
  let g = Timer.graph t.timer in
  let visited = ref 0 and walks = ref 0 in
  let notes = ref [] in
  let cands =
    match corner with
    | Timer.Late ->
      let launchers =
        match Vertex.ff_of t.verts v with
        | Some ff -> [ Graph.Launch_ff ff ]
        | None ->
          (* the input supernode stands for every input port *)
          List.filter_map
            (fun s ->
              match Graph.launcher_of_node g s with
              | Graph.Launch_port _ as l -> Some l
              | Graph.Launch_ff _ -> None)
            (Array.to_list (Graph.sources g))
      in
      List.concat_map
        (fun launcher ->
          let root = Graph.source_of_launcher g launcher in
          let found, vis, wk = cone_cached t ctx ~corner ~forward:true root notes in
          visited := !visited + vis;
          walks := !walks + wk;
          List.map
            (fun (node, delay) ->
              let endpoint = Graph.endpoint_of_node g node in
              let weight = Timer.edge_slack t.timer corner ~launcher ~endpoint ~delay in
              { c_launcher = launcher; c_endpoint = endpoint; c_delay = delay; c_weight = weight })
            found)
        launchers
    | Timer.Early ->
      let endpoints =
        match Vertex.ff_of t.verts v with
        | Some ff -> [ Graph.End_ff ff ]
        | None ->
          List.filter_map
            (fun e ->
              match Graph.endpoint_of_node g e with
              | Graph.End_port _ as ep -> Some ep
              | Graph.End_ff _ -> None)
            (Array.to_list (Graph.endpoints g))
      in
      List.concat_map
        (fun endpoint ->
          let root = Graph.node_of_endpoint g endpoint in
          let found, vis, wk = cone_cached t ctx ~corner ~forward:false root notes in
          visited := !visited + vis;
          walks := !walks + wk;
          List.map
            (fun (node, delay) ->
              let launcher = Graph.launcher_of_node g node in
              let weight = Timer.edge_slack t.timer corner ~launcher ~endpoint ~delay in
              { c_launcher = launcher; c_endpoint = endpoint; c_delay = delay; c_weight = weight })
            found)
        endpoints
  in
  { sh_cands = cands; sh_visited = !visited; sh_walks = !walks; sh_notes = List.rev !notes }

(* Fire the callback for every not-yet-expanded critical vertex. The
   criticality test reads only timer state and the one-time bound —
   never the growing graph — so selecting every vertex up front and
   cone-walking them in parallel fires exactly the sequential set. *)
let iccss_round t =
  t.stats.rounds <- t.stats.rounds + 1;
  Obs.incr t.oc.o_rounds;
  let selected = ref [] in
  for v = 0 to Vertex.num t.verts - 1 do
    if (not t.expanded.(v)) && iccss_critical t v then begin
      t.expanded.(v) <- true;
      selected := v :: !selected
    end
  done;
  let selected = Array.of_list (List.rev !selected) in
  let fired = Array.length selected in
  Obs.add t.oc.o_endpoints fired;
  let shards = walk t ~n:fired (fun ctx i -> iccss_collect t ctx selected.(i)) in
  ignore (merge t shards);
  fired

let constraint_edges t ff =
  let corner = Seq_graph.corner t.graph in
  let other = match corner with Timer.Late -> Timer.Early | Timer.Early -> Timer.Late in
  let count, visited =
    match other with
    | Timer.Early ->
      let found, visited = Timer.cone_to_endpoint t.timer Timer.Early (Graph.End_ff ff) in
      (List.length found, visited)
    | Timer.Late ->
      let found, visited = Timer.cone_from_launcher t.timer Timer.Late (Graph.Launch_ff ff) in
      (List.length found, visited)
  in
  t.stats.cone_nodes <- t.stats.cone_nodes + visited;
  Obs.add t.oc.o_cone visited;
  t.stats.edges_extracted <- t.stats.edges_extracted + count;
  Obs.add t.o_constraint count;
  count

(* ------------------------------------------------------------------ *)
(* Unified entry point                                                 *)

let run ?(obs = Obs.null) ?pool ?cache ~engine:kind timer verts ~corner =
  Option.iter (fun c -> M.bind c timer) cache;
  let t =
    {
      kind;
      timer;
      verts;
      graph = Seq_graph.create verts ~corner;
      stats = fresh_stats ();
      oc = resolve_obs obs (engine_name kind);
      pool;
      ctxs =
        Array.init
          (match pool with Some p -> Pool.jobs p | None -> 1)
          (fun _ -> Timer.cone_ctx timer);
      cache;
      pending_first = 0;
      bound = (match kind with Iccss -> compute_bound timer verts corner | Full | Essential -> [||]);
      expanded =
        (match kind with
        | Iccss -> Array.make (Vertex.num verts) false
        | Full | Essential -> [||]);
      o_constraint =
        (match kind with
        | Iccss -> Obs.counter obs "extract.iccss.constraint_edges"
        | Full | Essential -> Obs.counter Obs.null "extract.unused");
    }
  in
  (match kind with Full -> t.pending_first <- full_extract t | Essential | Iccss -> ());
  t

(* ------------------------------------------------------------------ *)
(* Durable snapshots (checkpoint/resume)                               *)

(* Everything that makes an engine's future behaviour differ from a
   freshly created one: the partial graph's edges *in insertion order*
   (order defines the solvers' input order, hence bit-determinism), the
   cost accounting, Full's pending first-round count, and IC-CSS's
   one-time bound/expansion state — the bound is computed from arc
   delays at creation time and arc delays change when the flow resizes
   cells, so it must be restored, never recomputed. *)

type edge_snap = {
  es_launcher : Graph.launcher;
  es_endpoint : Graph.endpoint;
  es_delay : float;
  es_weight : float;
}

type snapshot = {
  sn_engine : engine;
  sn_edges : edge_snap list;
  sn_edges_extracted : int;
  sn_cone_nodes : int;
  sn_rounds : int;
  sn_pending_first : int;
  sn_bound : float array;
  sn_expanded : bool array;
}

let snapshot t =
  let edges = ref [] in
  Seq_graph.iter_edges t.graph (fun id ->
      edges :=
        {
          es_launcher = Seq_graph.launcher t.graph id;
          es_endpoint = Seq_graph.endpoint t.graph id;
          es_delay = Seq_graph.delay t.graph id;
          es_weight = Seq_graph.weight t.graph id;
        }
        :: !edges);
  {
    sn_engine = t.kind;
    sn_edges = List.rev !edges;
    sn_edges_extracted = t.stats.edges_extracted;
    sn_cone_nodes = t.stats.cone_nodes;
    sn_rounds = t.stats.rounds;
    sn_pending_first = t.pending_first;
    sn_bound = Array.copy t.bound;
    sn_expanded = Array.copy t.expanded;
  }

let restore ?(obs = Obs.null) ?pool ?cache snap timer verts ~corner =
  Option.iter (fun c -> M.bind c timer) cache;
  let t =
    {
      kind = snap.sn_engine;
      timer;
      verts;
      graph = Seq_graph.create verts ~corner;
      stats = fresh_stats ();
      oc = resolve_obs obs (engine_name snap.sn_engine);
      pool;
      ctxs = worker_ctxs timer pool;
      cache;
      pending_first = snap.sn_pending_first;
      bound = Array.copy snap.sn_bound;
      expanded = Array.copy snap.sn_expanded;
      o_constraint =
        (match snap.sn_engine with
        | Iccss -> Obs.counter obs "extract.iccss.constraint_edges"
        | Full | Essential -> Obs.counter Obs.null "extract.unused");
    }
  in
  List.iter
    (fun e ->
      ignore
        (Seq_graph.add_edge t.graph ~launcher:e.es_launcher ~endpoint:e.es_endpoint
           ~delay:e.es_delay ~weight:e.es_weight))
    snap.sn_edges;
  t.stats.edges_extracted <- snap.sn_edges_extracted;
  t.stats.cone_nodes <- snap.sn_cone_nodes;
  t.stats.rounds <- snap.sn_rounds;
  t

let round ?limit t =
  match t.kind with
  | Full ->
    ignore limit;
    let n = t.pending_first in
    t.pending_first <- 0;
    n
  | Essential -> essential_round ?limit t
  | Iccss ->
    ignore limit;
    iccss_round t
