module Timer = Css_sta.Timer
module Graph = Css_sta.Graph
module Design = Css_netlist.Design
module Cell = Css_liberty.Cell
module Obs = Css_util.Obs

type stats = {
  mutable edges_extracted : int;
  mutable cone_nodes : int;
  mutable rounds : int;
}

let fresh_stats () = { edges_extracted = 0; cone_nodes = 0; rounds = 0 }

(* Per-engine observability handles, resolved once per engine instance so
   the extraction loops bump counters without name lookups. *)
type obs_counters = {
  o_edges : Obs.counter;  (* edges materialized into the graph *)
  o_candidates : Obs.counter;  (* cone results examined (kept or not) *)
  o_endpoints : Obs.counter;  (* endpoints / vertices cone-walked *)
  o_cone : Obs.counter;
  o_rounds : Obs.counter;
}

let resolve_obs obs engine =
  {
    o_edges = Obs.counter obs (Printf.sprintf "extract.%s.edges" engine);
    o_candidates = Obs.counter obs (Printf.sprintf "extract.%s.candidate_edges" engine);
    o_endpoints = Obs.counter obs (Printf.sprintf "extract.%s.endpoints_walked" engine);
    o_cone = Obs.counter obs (Printf.sprintf "extract.%s.cone_nodes" engine);
    o_rounds = Obs.counter obs (Printf.sprintf "extract.%s.rounds" engine);
  }

let launchers_of_design timer =
  let g = Timer.graph timer in
  Array.to_list (Array.map (Graph.launcher_of_node g) (Graph.sources g))

module Full = struct
  let extract ?(obs = Obs.null) timer verts ~corner =
    let oc = resolve_obs obs "full" in
    let stats = fresh_stats () in
    let graph = Seq_graph.create verts ~corner in
    List.iter
      (fun launcher ->
        let found, visited = Timer.cone_from_launcher timer corner launcher in
        stats.cone_nodes <- stats.cone_nodes + visited;
        Obs.add oc.o_cone visited;
        Obs.incr oc.o_endpoints;
        List.iter
          (fun (endpoint, delay) ->
            let weight = Timer.edge_slack timer corner ~launcher ~endpoint ~delay in
            ignore (Seq_graph.add_edge graph ~launcher ~endpoint ~delay ~weight);
            stats.edges_extracted <- stats.edges_extracted + 1;
            Obs.incr oc.o_candidates;
            Obs.incr oc.o_edges)
          found)
      (launchers_of_design timer);
    stats.rounds <- 1;
    Obs.incr oc.o_rounds;
    (graph, stats)
end

module Essential = struct
  type t = {
    timer : Timer.t;
    graph : Seq_graph.t;
    stats : stats;
    oc : obs_counters;
  }

  let create ?(obs = Obs.null) timer verts ~corner =
    {
      timer;
      graph = Seq_graph.create verts ~corner;
      stats = fresh_stats ();
      oc = resolve_obs obs "essential";
    }

  let graph t = t.graph
  let stats t = t.stats

  (* A violated endpoint needs (re-)extraction when its worst slack is not
     already explained by a stored edge: either it was never walked, or a
     previously positive (unextracted) path has turned negative. *)
  let round ?(limit = max_int) t =
    t.stats.rounds <- t.stats.rounds + 1;
    Obs.incr t.oc.o_rounds;
    let corner = Seq_graph.corner t.graph in
    let added = ref 0 in
    let walked = ref 0 in
    List.iter
      (fun (endpoint, slack) ->
        let known = Seq_graph.min_weight_from_endpoint t.graph endpoint in
        if !walked < limit && slack < known -. 1e-6 then begin
          incr walked;
          Obs.incr t.oc.o_endpoints;
          let found, visited = Timer.cone_to_endpoint t.timer corner endpoint in
          t.stats.cone_nodes <- t.stats.cone_nodes + visited;
          Obs.add t.oc.o_cone visited;
          List.iter
            (fun (launcher, delay) ->
              Obs.incr t.oc.o_candidates;
              let weight = Timer.edge_slack t.timer corner ~launcher ~endpoint ~delay in
              if weight < 0.0 then begin
                ignore (Seq_graph.add_edge t.graph ~launcher ~endpoint ~delay ~weight);
                t.stats.edges_extracted <- t.stats.edges_extracted + 1;
                Obs.incr t.oc.o_edges;
                incr added
              end)
            found
        end)
      (Timer.violated_endpoints t.timer corner);
    !added
end

module Iccss = struct
  type t = {
    timer : Timer.t;
    verts : Vertex.t;
    graph : Seq_graph.t;
    stats : stats;
    oc : obs_counters;
    o_constraint : Obs.counter;  (* Section III-E(ii) constraint edges *)
    bound : float array;  (* one-time extreme outgoing/incoming path delay *)
    expanded : bool array;
  }

  (* One global DP giving, per vertex, the quantity Eq. (8) tests against:
     late -> the max path delay from the vertex's launch pin to any
     endpoint; early -> the min path delay from any launch pin to the
     vertex's capture pin. Computed once, exactly as IC-CSS prescribes. *)
  let compute_bound timer verts corner =
    let g = Timer.graph timer in
    let n = Graph.num_nodes g in
    let topo = Graph.topo_order g in
    let dist = Array.make n (match corner with Timer.Late -> neg_infinity | Timer.Early -> infinity) in
    (match corner with
    | Timer.Late ->
      Array.iter (fun e -> dist.(e) <- 0.0) (Graph.endpoints g);
      for i = Array.length topo - 1 downto 0 do
        let u = topo.(i) in
        if not (Graph.is_endpoint g u) then
          Graph.iter_out g u (fun a v ->
              if dist.(v) > neg_infinity then begin
                let cand = Timer.arc_delay timer Timer.Late a +. dist.(v) in
                if cand > dist.(u) then dist.(u) <- cand
              end)
      done
    | Timer.Early ->
      Array.iter (fun s -> dist.(s) <- 0.0) (Graph.sources g);
      Array.iter
        (fun v ->
          if not (Graph.is_source g v) then
            Graph.iter_in g v (fun a u ->
                if dist.(u) < infinity then begin
                  let cand = dist.(u) +. Timer.arc_delay timer Timer.Early a in
                  if cand < dist.(v) then dist.(v) <- cand
                end))
        topo);
    let bound =
      Array.make (Vertex.num verts)
        (match corner with Timer.Late -> neg_infinity | Timer.Early -> infinity)
    in
    let fold v cand =
      match corner with
      | Timer.Late -> if cand > bound.(v) then bound.(v) <- cand
      | Timer.Early -> if cand < bound.(v) then bound.(v) <- cand
    in
    (match corner with
    | Timer.Late ->
      Array.iter
        (fun s -> fold (Vertex.of_launcher verts (Graph.launcher_of_node g s)) dist.(s))
        (Graph.sources g)
    | Timer.Early ->
      Array.iter
        (fun e -> fold (Vertex.of_endpoint verts (Graph.endpoint_of_node g e)) dist.(e))
        (Graph.endpoints g));
    bound

  let create ?(obs = Obs.null) timer verts ~corner =
    {
      timer;
      verts;
      graph = Seq_graph.create verts ~corner;
      stats = fresh_stats ();
      oc = resolve_obs obs "iccss";
      o_constraint = Obs.counter obs "extract.iccss.constraint_edges";
      bound = compute_bound timer verts corner;
      expanded = Array.make (Vertex.num verts) false;
    }

  let graph t = t.graph
  let stats t = t.stats

  let design t = Timer.design t.timer

  let ref_ff_params t = Cell.ff_params (Css_liberty.Library.flip_flop (Design.library (design t)))

  (* Eq. (8) adapted to the NSO problem. Albrecht's parametric search
     drives the period variable down towards the maximum mean cycle, so a
     vertex fires the callback as soon as it could become critical at any
     period the search visits; with the period fixed, the equivalent test
     gives every vertex a cushion equal to the current worst negative
     slack — the depth to which the search would descend. *)
  let critical t v =
    let corner = Seq_graph.corner t.graph in
    let d = design t in
    let period = Design.clock_period d in
    let p = ref_ff_params t in
    let cushion = Float.max 0.0 (-.Timer.wns t.timer corner) in
    match corner with
    | Timer.Late ->
      t.bound.(v) > neg_infinity
      &&
      let l_u, c2q =
        match Vertex.ff_of t.verts v with
        | Some ff ->
          (Design.clock_latency d ff, (Cell.ff_params (Design.cell_master d ff)).Cell.clk_to_q)
        | None -> (0.0, 0.0)
      in
      period -. p.Cell.setup -. (l_u +. c2q +. t.bound.(v)) < cushion
    | Timer.Early ->
      t.bound.(v) < infinity
      &&
      let l_v, hold =
        match Vertex.ff_of t.verts v with
        | Some ff ->
          (Design.clock_latency d ff, (Cell.ff_params (Design.cell_master d ff)).Cell.hold)
        | None -> (0.0, 0.0)
      in
      let derate = (Timer.config t.timer).Timer.early_derate in
      (derate *. p.Cell.clk_to_q) +. t.bound.(v) -. (l_v +. hold) < cushion

  (* The callback of IC-CSS: materialize *all* outgoing sequential edges
     of the vertex — essential or not — which is exactly the over-
     extraction the paper removes. *)
  let expand t v =
    let corner = Seq_graph.corner t.graph in
    let d = design t in
    let g = Timer.graph t.timer in
    match corner with
    | Timer.Late ->
      let launchers =
        match Vertex.ff_of t.verts v with
        | Some ff -> [ Graph.Launch_ff ff ]
        | None ->
          (* the input supernode stands for every input port *)
          List.filter_map
            (fun s ->
              match Graph.launcher_of_node g s with
              | Graph.Launch_port _ as l -> Some l
              | Graph.Launch_ff _ -> None)
            (Array.to_list (Graph.sources g))
      in
      List.iter
        (fun launcher ->
          let found, visited = Timer.cone_from_launcher t.timer corner launcher in
          t.stats.cone_nodes <- t.stats.cone_nodes + visited;
          Obs.add t.oc.o_cone visited;
          List.iter
            (fun (endpoint, delay) ->
              let weight = Timer.edge_slack t.timer corner ~launcher ~endpoint ~delay in
              ignore (Seq_graph.add_edge t.graph ~launcher ~endpoint ~delay ~weight);
              t.stats.edges_extracted <- t.stats.edges_extracted + 1;
              Obs.incr t.oc.o_candidates;
              Obs.incr t.oc.o_edges)
            found)
        launchers
    | Timer.Early ->
      let endpoints =
        match Vertex.ff_of t.verts v with
        | Some ff -> [ Graph.End_ff ff ]
        | None ->
          List.filter_map
            (fun e ->
              match Graph.endpoint_of_node g e with
              | Graph.End_port _ as ep -> Some ep
              | Graph.End_ff _ -> None)
            (Array.to_list (Graph.endpoints g))
      in
      ignore d;
      List.iter
        (fun endpoint ->
          let found, visited = Timer.cone_to_endpoint t.timer corner endpoint in
          t.stats.cone_nodes <- t.stats.cone_nodes + visited;
          Obs.add t.oc.o_cone visited;
          List.iter
            (fun (launcher, delay) ->
              let weight = Timer.edge_slack t.timer corner ~launcher ~endpoint ~delay in
              ignore (Seq_graph.add_edge t.graph ~launcher ~endpoint ~delay ~weight);
              t.stats.edges_extracted <- t.stats.edges_extracted + 1;
              Obs.incr t.oc.o_candidates;
              Obs.incr t.oc.o_edges)
            found)
        endpoints

  let extract_critical t =
    t.stats.rounds <- t.stats.rounds + 1;
    Obs.incr t.oc.o_rounds;
    let fired = ref 0 in
    (* In the late problem out-edges belong to the launch side of the
       scheduling graph, i.e. vertex ids in the orientation's src role;
       criticality is a per-vertex test either way. *)
    for v = 0 to Vertex.num t.verts - 1 do
      if (not t.expanded.(v)) && critical t v then begin
        t.expanded.(v) <- true;
        Obs.incr t.oc.o_endpoints;
        expand t v;
        incr fired
      end
    done;
    !fired

  let extract_constraint_edges t ff =
    let corner = Seq_graph.corner t.graph in
    let other = match corner with Timer.Late -> Timer.Early | Timer.Early -> Timer.Late in
    let count, visited =
      match other with
      | Timer.Early ->
        let found, visited = Timer.cone_to_endpoint t.timer Timer.Early (Graph.End_ff ff) in
        (List.length found, visited)
      | Timer.Late ->
        let found, visited = Timer.cone_from_launcher t.timer Timer.Late (Graph.Launch_ff ff) in
        (List.length found, visited)
    in
    t.stats.cone_nodes <- t.stats.cone_nodes + visited;
    Obs.add t.oc.o_cone visited;
    let n = count in
    t.stats.edges_extracted <- t.stats.edges_extracted + n;
    Obs.add t.o_constraint n;
    n
end
