(** Sequential-graph vertices: flip-flops plus two supernodes.

    The paper's graph [G = (V, E', w)] has one vertex per flip-flop and
    two supernodes standing for all input and all output ports. Supernode
    latency is pinned at 0 — primary ports cannot be skewed.

    Vertex ids are dense ints: FF vertices occupy [0, #FFs) in the
    design's {!Css_netlist.Design.ffs} order, followed by the two
    supernodes. FF-to-vertex translation goes through the design's
    interned FF ordinal ({!Css_netlist.Design.ff_index}) — an array read,
    no hashing. *)

type t

type id = int
(** Dense vertex index in [0, num). *)

(** [of_design d] indexes all flip-flops of [d] and the two supernodes.
    O(#cells) on first use (builds the design's FF index). *)
val of_design : Css_netlist.Design.t -> t

(** [num t] is the vertex count: [#FFs + 2]. O(1). *)
val num : t -> int

(** [input_super t] / [output_super t] are the supernode ids. O(1). *)
val input_super : t -> id

val output_super : t -> id

(** [is_super t v] — two int compares. O(1). *)
val is_super : t -> id -> bool

(** [of_ff t ff] is the vertex of flip-flop instance [ff]. O(1).
    @raise Not_found if [ff] is not a flip-flop of the design. *)
val of_ff : t -> Css_netlist.Design.cell_id -> id

(** [ff_of t v] is the flip-flop behind [v], or [None] for supernodes.
    O(1); allocates the option. *)
val ff_of : t -> id -> Css_netlist.Design.cell_id option

(** [of_launcher t l] maps a timing-graph launcher to its vertex (input
    ports collapse onto the input supernode). O(1). *)
val of_launcher : t -> Css_sta.Graph.launcher -> id

(** [of_endpoint t e] maps a timing endpoint to its vertex (output ports
    collapse onto the output supernode). O(1). *)
val of_endpoint : t -> Css_sta.Graph.endpoint -> id

(** [name t design v] is a printable vertex name. *)
val name : t -> Css_netlist.Design.t -> id -> string
