module Design = Css_netlist.Design

type id = int

type t = {
  design : Design.t;
  ffs : Design.cell_id array;
  input_super : id;
  output_super : id;
}

let of_design d =
  let ffs = Design.ffs d in
  { design = d; ffs; input_super = Array.length ffs; output_super = Array.length ffs + 1 }

let num t = Array.length t.ffs + 2

let input_super t = t.input_super

let output_super t = t.output_super

let is_super t v = v = t.input_super || v = t.output_super

let of_ff t ff =
  let i = Design.ff_index t.design ff in
  if i < 0 then raise Not_found else i

let ff_of t v = if is_super t v then None else Some t.ffs.(v)

let of_launcher t = function
  | Css_sta.Graph.Launch_ff ff -> of_ff t ff
  | Css_sta.Graph.Launch_port _ -> t.input_super

let of_endpoint t = function
  | Css_sta.Graph.End_ff ff -> of_ff t ff
  | Css_sta.Graph.End_port _ -> t.output_super

let name t design v =
  if v = t.input_super then "<IN>"
  else if v = t.output_super then "<OUT>"
  else Design.cell_name design t.ffs.(v)
