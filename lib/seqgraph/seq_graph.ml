module Ivec = Css_util.Ivec
module Fvec = Css_util.Fvec
module Timer = Css_sta.Timer
module Graph = Css_sta.Graph

type edge_id = int

(* Launchers and endpoints are stored int-encoded per edge, mirroring the
   timing graph's convention: [2*cell] for an FF, [2*port+1] for a port.
   The variant views are materialized on demand by [launcher]/[endpoint]. *)
let enc_launcher = function
  | Graph.Launch_ff ff -> 2 * ff
  | Graph.Launch_port p -> (2 * p) + 1

let enc_endpoint = function
  | Graph.End_ff ff -> 2 * ff
  | Graph.End_port p -> (2 * p) + 1

let dec_launcher enc =
  if enc land 1 = 0 then Graph.Launch_ff (enc lsr 1) else Graph.Launch_port (enc lsr 1)

let dec_endpoint enc =
  if enc land 1 = 0 then Graph.End_ff (enc lsr 1) else Graph.End_port (enc lsr 1)

type t = {
  verts : Vertex.t;
  corner : Timer.corner;
  nverts : int;  (* for the (src, dst) -> key packing *)
  esrc : Ivec.t;
  edst : Ivec.t;
  ew : Fvec.t;
  edelay : Fvec.t;
  elaunch : Ivec.t;  (* encoded launcher per edge *)
  eend : Ivec.t;  (* encoded endpoint per edge *)
  by_pair : (int, edge_id) Hashtbl.t;  (* src * nverts + dst -> edge *)
  out_adj : edge_id list array;
  in_adj : edge_id list array;
  by_endpoint : (int, edge_id list) Hashtbl.t;  (* encoded endpoint *)
}

let create verts ~corner =
  let n = Vertex.num verts in
  {
    verts;
    corner;
    nverts = n;
    esrc = Ivec.create ();
    edst = Ivec.create ();
    ew = Fvec.create ();
    edelay = Fvec.create ();
    elaunch = Ivec.create ();
    eend = Ivec.create ();
    by_pair = Hashtbl.create 256;
    out_adj = Array.make n [];
    in_adj = Array.make n [];
    by_endpoint = Hashtbl.create 256;
  }

let corner t = t.corner
let vertices t = t.verts
let num_edges t = Ivec.length t.esrc

let src t id = Ivec.get t.esrc id
let dst t id = Ivec.get t.edst id
let weight t id = Fvec.get t.ew id
let delay t id = Fvec.get t.edelay id
let set_weight t id w = Fvec.set t.ew id w
let launcher t id = dec_launcher (Ivec.get t.elaunch id)
let endpoint t id = dec_endpoint (Ivec.get t.eend id)

(* Scheduling orientation: late edges run launch->capture, early edges
   capture->launch, so that d(weight)/d(latency(dst)) = +1 either way. *)
let orient t ~launcher ~endpoint =
  let lv = Vertex.of_launcher t.verts launcher in
  let ev = Vertex.of_endpoint t.verts endpoint in
  match t.corner with Timer.Late -> (lv, ev) | Timer.Early -> (ev, lv)

let add_edge t ~launcher ~endpoint ~delay ~weight =
  let src, dst = orient t ~launcher ~endpoint in
  let key = (src * t.nverts) + dst in
  let el = enc_launcher launcher and ee = enc_endpoint endpoint in
  match Hashtbl.find_opt t.by_pair key with
  | Some id ->
    if Ivec.get t.elaunch id = el && Ivec.get t.eend id = ee then begin
      (* same timing path re-extracted: the new values are the current
         truth (placement or sizing may have changed the path delay) *)
      Fvec.set t.ew id weight;
      Fvec.set t.edelay id delay
    end
    else if weight < Fvec.get t.ew id then begin
      (* a different launcher/endpoint pair collapsing onto the same
         supernode vertices: keep the worse path *)
      Fvec.set t.ew id weight;
      Fvec.set t.edelay id delay
    end;
    id
  | None ->
    let id = Ivec.push t.esrc src in
    ignore (Ivec.push t.edst dst);
    ignore (Fvec.push t.ew weight);
    ignore (Fvec.push t.edelay delay);
    ignore (Ivec.push t.elaunch el);
    ignore (Ivec.push t.eend ee);
    Hashtbl.replace t.by_pair key id;
    t.out_adj.(src) <- id :: t.out_adj.(src);
    t.in_adj.(dst) <- id :: t.in_adj.(dst);
    let prev = Option.value ~default:[] (Hashtbl.find_opt t.by_endpoint ee) in
    Hashtbl.replace t.by_endpoint ee (id :: prev);
    id

let find t ~src ~dst = Hashtbl.find_opt t.by_pair ((src * t.nverts) + dst)

let iter_edges t f =
  for id = 0 to num_edges t - 1 do
    f id
  done

let edge_ids t = List.init (num_edges t) Fun.id

let out_edges t v = List.rev t.out_adj.(v)

let in_edges t v = List.rev t.in_adj.(v)

let min_weight_from_endpoint t endpoint =
  match Hashtbl.find_opt t.by_endpoint (enc_endpoint endpoint) with
  | None -> infinity
  | Some ids -> List.fold_left (fun acc id -> Float.min acc (Fvec.get t.ew id)) infinity ids

let apply_latency_delta t deltas =
  for id = 0 to num_edges t - 1 do
    let s = Ivec.unsafe_get t.esrc id and d = Ivec.unsafe_get t.edst id in
    Fvec.unsafe_set t.ew id
      (Fvec.unsafe_get t.ew id +. Array.unsafe_get deltas d -. Array.unsafe_get deltas s)
  done

let recompute_weight t timer id =
  Timer.edge_slack timer t.corner ~launcher:(launcher t id) ~endpoint:(endpoint t id)
    ~delay:(Fvec.get t.edelay id)

let refresh_weights t timer =
  for id = 0 to num_edges t - 1 do
    Fvec.set t.ew id (recompute_weight t timer id)
  done

(* ------------------------------------------------------------------ *)
(* Packed views for the solvers                                        *)

type view = {
  v_n : int;
  v_src : int array;
  v_dst : int array;
  v_w : float array;
}

let select t pred =
  let src = Ivec.create () and dst = Ivec.create () in
  let w = Fvec.create () in
  for id = 0 to num_edges t - 1 do
    if pred id then begin
      ignore (Ivec.push src (Ivec.unsafe_get t.esrc id));
      ignore (Ivec.push dst (Ivec.unsafe_get t.edst id));
      ignore (Fvec.push w (Fvec.unsafe_get t.ew id))
    end
  done;
  { v_n = Ivec.length src; v_src = Ivec.to_array src; v_dst = Ivec.to_array dst; v_w = Fvec.to_array w }

let view_of_list triples =
  let n = List.length triples in
  let src = Array.make (max n 1) 0
  and dst = Array.make (max n 1) 0
  and w = Array.make (max n 1) 0.0 in
  List.iteri
    (fun i (s, d, wt) ->
      src.(i) <- s;
      dst.(i) <- d;
      w.(i) <- wt)
    triples;
  { v_n = n; v_src = src; v_dst = dst; v_w = w }
