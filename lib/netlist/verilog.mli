(** Structural Verilog and DEF-style placement export.

    The textual {!Io} format is this library's native interchange; for
    hand-off to other tools the same design can be emitted as a gate-level
    structural Verilog module plus a minimal DEF placement file
    (COMPONENTS with PLACED coordinates and the clock-net routing left to
    the consumer). Export only — designs are not read back from Verilog. *)

(** [export_diagnostics design] reports names that would not survive the
    hand-off as structured diagnostics (codes [VER-001..VER-004]):
    module/port/instance/net names that are not legal simple Verilog
    identifiers, and port/instance name collisions. Empty means the
    exported text is well-formed for any standard consumer. *)
val export_diagnostics : Design.t -> Css_util.Diag.t list

(** [to_verilog design] is the structural netlist: one module named after
    the design, ports in declaration order, one wire per internal net, and
    one instantiation per cell with named port connections. *)
val to_verilog : Design.t -> string

(** [to_def design] is a minimal DEF: DESIGN/UNITS/DIEAREA header and a
    COMPONENTS section placing every instance at its current location. *)
val to_def : Design.t -> string

(** [save_verilog design path] / [save_def design path] write the files. *)
val save_verilog : Design.t -> string -> unit

val save_def : Design.t -> string -> unit
