module Vec = Css_util.Vec
module Ivec = Css_util.Ivec
module Fvec = Css_util.Fvec
module Point = Css_geometry.Point
module Rect = Css_geometry.Rect
module Cell = Css_liberty.Cell
module Library = Css_liberty.Library
module Wire = Css_liberty.Wire

type cell_id = int
type pin_id = int
type net_id = int
type port_id = int

type port_dir =
  | In
  | Out

type pin_owner =
  | Cell_pin of cell_id * string
  | Port_pin of port_id

(* Cell role cache, so hot loops classify instances without chasing the
   master-cell pointer. *)
let role_comb = 0
let role_ff = 1
let role_lcb = 2

(* Struct-of-arrays storage: every entity attribute is its own dense
   column indexed by the entity id. Int columns use -1 as the "none"
   sentinel instead of option (no boxing); float columns are monomorphic
   flat arrays (no boxing on read). See docs/PERFORMANCE.md. *)
type t = {
  name : string;
  library : Library.t;
  die : Rect.t;
  clock_period : float;
  (* cells *)
  cell_master : Cell.t Vec.t;
  cell_name : string Vec.t;
  cell_x : Fvec.t;
  cell_y : Fvec.t;
  cell_orig_x : Fvec.t;
  cell_orig_y : Fvec.t;
  cell_first_pin : Ivec.t;  (* pins of a cell are contiguous: [first, first+count) *)
  cell_pin_count : Ivec.t;
  cell_role : Ivec.t;
  cell_sched_latency : Fvec.t;
  (* ports *)
  port_name : string Vec.t;
  port_dir : port_dir Vec.t;
  port_x : Fvec.t;
  port_y : Fvec.t;
  port_pin : Ivec.t;
  (* pins *)
  pin_cell : Ivec.t;  (* owning cell, -1 for port pins *)
  pin_port : Ivec.t;  (* owning port, -1 for cell pins *)
  pin_name_tok : Ivec.t;  (* interned master pin name, -1 for port pins *)
  pin_out : Ivec.t;  (* 1 when the pin is a signal source *)
  pin_net : Ivec.t;  (* -1 when unconnected *)
  (* pin-name interning *)
  pin_name_of_tok : string Vec.t;
  tok_of_pin_name : (string, int) Hashtbl.t;
  (* nets *)
  net_name : string Vec.t;
  net_driver : Ivec.t;  (* -1 when absent *)
  net_sinks : Ivec.t Vec.t;
  (* clock *)
  mutable clock_root : port_id;  (* -1 when undeclared *)
  mutable ff_cache : cell_id array option;
  mutable lcb_cache : cell_id array option;
  mutable ff_index_cache : int array option;  (* cell -> dense FF ordinal, -1 *)
  latency_bounds : (cell_id, float * float) Hashtbl.t;
}

let create ~name ~library ~die ~clock_period () =
  {
    name;
    library;
    die;
    clock_period;
    cell_master = Vec.create ();
    cell_name = Vec.create ();
    cell_x = Fvec.create ();
    cell_y = Fvec.create ();
    cell_orig_x = Fvec.create ();
    cell_orig_y = Fvec.create ();
    cell_first_pin = Ivec.create ();
    cell_pin_count = Ivec.create ();
    cell_role = Ivec.create ();
    cell_sched_latency = Fvec.create ();
    port_name = Vec.create ();
    port_dir = Vec.create ();
    port_x = Fvec.create ();
    port_y = Fvec.create ();
    port_pin = Ivec.create ();
    pin_cell = Ivec.create ();
    pin_port = Ivec.create ();
    pin_name_tok = Ivec.create ();
    pin_out = Ivec.create ();
    pin_net = Ivec.create ();
    pin_name_of_tok = Vec.create ();
    tok_of_pin_name = Hashtbl.create 16;
    net_name = Vec.create ();
    net_driver = Ivec.create ();
    net_sinks = Vec.create ();
    clock_root = -1;
    ff_cache = None;
    lcb_cache = None;
    ff_index_cache = None;
    latency_bounds = Hashtbl.create 16;
  }

let intern_pin_name t name =
  match Hashtbl.find_opt t.tok_of_pin_name name with
  | Some tok -> tok
  | None ->
    let tok = Vec.push t.pin_name_of_tok name in
    Hashtbl.replace t.tok_of_pin_name name tok;
    tok

let pin_name_token t name =
  match Hashtbl.find_opt t.tok_of_pin_name name with Some tok -> tok | None -> -1

let new_pin t ~cell ~port ~tok ~out =
  let id = Ivec.push t.pin_cell cell in
  ignore (Ivec.push t.pin_port port);
  ignore (Ivec.push t.pin_name_tok tok);
  ignore (Ivec.push t.pin_out (if out then 1 else 0));
  ignore (Ivec.push t.pin_net (-1));
  id

let add_port t ~name ~dir ~pos =
  let id = Vec.push t.port_name name in
  ignore (Vec.push t.port_dir dir);
  ignore (Fvec.push t.port_x pos.Point.x);
  ignore (Fvec.push t.port_y pos.Point.y);
  (* an input port is a signal source of its net *)
  let pin = new_pin t ~cell:(-1) ~port:id ~tok:(-1) ~out:(dir = In) in
  ignore (Ivec.push t.port_pin pin);
  id

let role_of_cell cell =
  match cell.Cell.role with
  | Cell.Combinational -> role_comb
  | Cell.Flip_flop _ -> role_ff
  | Cell.Clock_buffer _ -> role_lcb

let add_cell t ~name ~master ~pos =
  let cell = Library.find t.library master in
  let id = Vec.push t.cell_master cell in
  ignore (Vec.push t.cell_name name);
  ignore (Fvec.push t.cell_x pos.Point.x);
  ignore (Fvec.push t.cell_y pos.Point.y);
  ignore (Fvec.push t.cell_orig_x pos.Point.x);
  ignore (Fvec.push t.cell_orig_y pos.Point.y);
  ignore (Ivec.push t.cell_role (role_of_cell cell));
  ignore (Fvec.push t.cell_sched_latency 0.0);
  ignore (Ivec.push t.cell_first_pin (Ivec.length t.pin_cell));
  (* pin ids are assigned in inputs-then-outputs order, matching the
     master's declaration — the order Io serialization relies on *)
  List.iter
    (fun pn -> ignore (new_pin t ~cell:id ~port:(-1) ~tok:(intern_pin_name t pn) ~out:false))
    cell.Cell.inputs;
  List.iter
    (fun pn -> ignore (new_pin t ~cell:id ~port:(-1) ~tok:(intern_pin_name t pn) ~out:true))
    cell.Cell.outputs;
  ignore (Ivec.push t.cell_pin_count (Ivec.length t.pin_cell - Ivec.get t.cell_first_pin id));
  t.ff_cache <- None;
  t.lcb_cache <- None;
  t.ff_index_cache <- None;
  id

let[@inline] pin_cell_id t p = Ivec.get t.pin_cell p
let[@inline] pin_port_id t p = Ivec.get t.pin_port p
let[@inline] pin_name_id t p = Ivec.get t.pin_name_tok p

let pin_owner t p =
  let c = Ivec.get t.pin_cell p in
  if c >= 0 then Cell_pin (c, Vec.get t.pin_name_of_tok (Ivec.get t.pin_name_tok p))
  else Port_pin (Ivec.get t.pin_port p)

let[@inline] pin_net_id t p = Ivec.get t.pin_net p

let pin_net t p =
  let n = Ivec.get t.pin_net p in
  if n < 0 then None else Some n

let cell_master t c = Vec.get t.cell_master c

let[@inline] pin_is_output t p = Ivec.get t.pin_out p = 1

let add_net t ~name ~driver ~sinks =
  if not (pin_is_output t driver) then
    invalid_arg (Printf.sprintf "Design.add_net %s: driver pin is not a signal source" name);
  List.iter
    (fun p ->
      if pin_net_id t p >= 0 then
        invalid_arg (Printf.sprintf "Design.add_net %s: pin already connected" name))
    (driver :: sinks);
  let id = Vec.push t.net_name name in
  ignore (Ivec.push t.net_driver driver);
  ignore (Vec.push t.net_sinks (Ivec.of_list sinks));
  Ivec.set t.pin_net driver id;
  List.iter (fun p -> Ivec.set t.pin_net p id) sinks;
  id

let net_add_sink t n p =
  if pin_net_id t p >= 0 then invalid_arg "Design.net_add_sink: pin already connected";
  if pin_is_output t p then invalid_arg "Design.net_add_sink: pin is a signal source";
  ignore (Ivec.push (Vec.get t.net_sinks n) p);
  Ivec.set t.pin_net p n

let set_clock_root t port = t.clock_root <- port

let name t = t.name
let library t = t.library
let die t = t.die
let clock_period t = t.clock_period
let num_cells t = Vec.length t.cell_master
let num_pins t = Ivec.length t.pin_cell
let num_nets t = Vec.length t.net_name
let num_ports t = Vec.length t.port_name
let cell_name t c = Vec.get t.cell_name c
let[@inline] cell_x t c = Fvec.get t.cell_x c
let[@inline] cell_y t c = Fvec.get t.cell_y c
let cell_pos t c = Point.make (Fvec.get t.cell_x c) (Fvec.get t.cell_y c)
let cell_orig_pos t c = Point.make (Fvec.get t.cell_orig_x c) (Fvec.get t.cell_orig_y c)

let move_cell t c (pos : Point.t) =
  Fvec.set t.cell_x c pos.Point.x;
  Fvec.set t.cell_y c pos.Point.y

let set_cell_orig_pos t c (pos : Point.t) =
  Fvec.set t.cell_orig_x c pos.Point.x;
  Fvec.set t.cell_orig_y c pos.Point.y

let swap_master t c master =
  let next = Library.find t.library master in
  let current = cell_master t c in
  if not (Cell.same_interface current next) then
    invalid_arg
      (Printf.sprintf "Design.swap_master: %s and %s have different interfaces"
         current.Cell.name next.Cell.name);
  Vec.set t.cell_master c next

let cell_pin t c pin_name =
  let tok = pin_name_token t pin_name in
  if tok < 0 then raise Not_found;
  let first = Ivec.get t.cell_first_pin c in
  let count = Ivec.get t.cell_pin_count c in
  let rec scan i =
    if i >= first + count then raise Not_found
    else if Ivec.unsafe_get t.pin_name_tok i = tok then i
    else scan (i + 1)
  in
  scan first

let port_name t p = Vec.get t.port_name p
let port_dir t p = Vec.get t.port_dir p
let port_pos t p = Point.make (Fvec.get t.port_x p) (Fvec.get t.port_y p)
let port_pin t p = Ivec.get t.port_pin p

let[@inline] pin_x t p =
  let c = Ivec.get t.pin_cell p in
  if c >= 0 then Fvec.get t.cell_x c else Fvec.get t.port_x (Ivec.get t.pin_port p)

let[@inline] pin_y t p =
  let c = Ivec.get t.pin_cell p in
  if c >= 0 then Fvec.get t.cell_y c else Fvec.get t.port_y (Ivec.get t.pin_port p)

let pin_pos t p = Point.make (pin_x t p) (pin_y t p)

let[@inline] pin_dist t p q =
  Float.abs (pin_x t p -. pin_x t q) +. Float.abs (pin_y t p -. pin_y t q)

let net_name t n = Vec.get t.net_name n

let[@inline] net_driver_id t n = Ivec.get t.net_driver n

let net_driver t n =
  let d = Ivec.get t.net_driver n in
  if d < 0 then None else Some d

let net_sinks t n = Ivec.to_list (Vec.get t.net_sinks n)
let[@inline] net_fanout t n = Ivec.length (Vec.get t.net_sinks n)
let[@inline] net_sink t n i = Ivec.get (Vec.get t.net_sinks n) i
let iter_net_sinks t n f = Ivec.iter f (Vec.get t.net_sinks n)

let iter_cells t f =
  for c = 0 to num_cells t - 1 do
    f c
  done

let iter_nets t f =
  for n = 0 to num_nets t - 1 do
    f n
  done

let iter_ports t f =
  for p = 0 to num_ports t - 1 do
    f p
  done

let[@inline] is_ff t c = Ivec.get t.cell_role c = role_ff

let[@inline] is_lcb t c = Ivec.get t.cell_role c = role_lcb

let collect t pred =
  let acc = Ivec.create () in
  iter_cells t (fun c -> if pred c then ignore (Ivec.push acc c));
  Ivec.to_array acc

let ffs t =
  match t.ff_cache with
  | Some a -> a
  | None ->
    let a = collect t (is_ff t) in
    t.ff_cache <- Some a;
    a

let lcbs t =
  match t.lcb_cache with
  | Some a -> a
  | None ->
    let a = collect t (is_lcb t) in
    t.lcb_cache <- Some a;
    a

let ff_index t c =
  let index =
    match t.ff_index_cache with
    | Some a -> a
    | None ->
      let a = Array.make (max (num_cells t) 1) (-1) in
      Array.iteri (fun i ff -> a.(ff) <- i) (ffs t);
      t.ff_index_cache <- Some a;
      a
  in
  index.(c)

let[@inline] clock_root_id t = t.clock_root

let clock_root t = if t.clock_root < 0 then None else Some t.clock_root

let ck_pin_name = "CK"

let lcb_out_pin_name = "CKO"

let lcb_of_ff t ff =
  let ck = cell_pin t ff ck_pin_name in
  let net = pin_net_id t ck in
  if net < 0 then raise Not_found
  else begin
    let drv = net_driver_id t net in
    if drv < 0 then raise Not_found
    else begin
      let c = pin_cell_id t drv in
      if c >= 0 && is_lcb t c then c else raise Not_found
    end
  end

let lcb_out_net t lcb =
  let n = pin_net_id t (cell_pin t lcb lcb_out_pin_name) in
  if n >= 0 then n else invalid_arg "Design: LCB has no output net"

let ffs_of_lcb t lcb =
  let net = lcb_out_net t lcb in
  let ck_tok = pin_name_token t ck_pin_name in
  List.filter_map
    (fun p ->
      let c = pin_cell_id t p in
      if c >= 0 && is_ff t c && pin_name_id t p = ck_tok then Some c else None)
    (net_sinks t net)

let lcb_fanout t lcb =
  (* an LCB driving no net (possible after lenient-recovery parsing)
     clocks nothing: fanout 0, not an error *)
  let n = pin_net_id t (cell_pin t lcb lcb_out_pin_name) in
  if n < 0 then 0 else net_fanout t n

let reconnect_ff_to_lcb t ~ff ~lcb =
  if not (is_lcb t lcb) then invalid_arg "Design.reconnect_ff_to_lcb: target is not an LCB";
  let new_net = lcb_out_net t lcb in
  let ck = cell_pin t ff ck_pin_name in
  let old_net = pin_net_id t ck in
  if old_net >= 0 then begin
    let sinks = Vec.get t.net_sinks old_net in
    let i = Ivec.find_index (fun p -> p = ck) sinks in
    if i >= 0 then begin
      (* order within a net does not matter; swap-remove *)
      let last = Ivec.pop sinks in
      if i < Ivec.length sinks then Ivec.set sinks i last
    end;
    Ivec.set t.pin_net ck (-1)
  end;
  ignore (Ivec.push (Vec.get t.net_sinks new_net) ck);
  Ivec.set t.pin_net ck new_net

let physical_clock_latency t ff =
  match lcb_of_ff t ff with
  | exception Not_found -> 0.0
  | lcb ->
    let master = cell_master t lcb in
    let insertion =
      match master.Cell.role with
      | Cell.Clock_buffer { insertion } -> insertion
      | Cell.Combinational | Cell.Flip_flop _ -> 0.0
    in
    let wire = Library.wire t.library in
    let len =
      Float.abs (cell_x t lcb -. cell_x t ff) +. Float.abs (cell_y t lcb -. cell_y t ff)
    in
    insertion +. Wire.delay wire ~r_drive:master.Cell.drive_res ~len

let[@inline] scheduled_latency t ff = Fvec.get t.cell_sched_latency ff

let set_scheduled_latency t ff v = Fvec.set t.cell_sched_latency ff v

let clear_scheduled_latencies t = Fvec.fill t.cell_sched_latency 0.0

let clock_latency t ff = physical_clock_latency t ff +. scheduled_latency t ff

let set_latency_bounds t ff ~lo ~hi =
  if lo < 0.0 || hi < 0.0 || lo > hi then
    invalid_arg "Design.set_latency_bounds: need 0 <= lo <= hi";
  Hashtbl.replace t.latency_bounds ff (lo, hi)

let latency_bounds t ff =
  Option.value ~default:(0.0, infinity) (Hashtbl.find_opt t.latency_bounds ff)

let clear_latency_bounds t ff = Hashtbl.remove t.latency_bounds ff

let net_pin_points t n =
  let pts =
    match net_driver t n with
    | None -> []
    | Some d -> [ pin_pos t d ]
  in
  pts @ List.map (pin_pos t) (net_sinks t n)

let net_hpwl t n = Css_geometry.Hpwl.of_points (net_pin_points t n)

let total_hpwl t =
  let acc = ref 0.0 in
  iter_nets t (fun n -> acc := !acc +. net_hpwl t n);
  !acc

let check t =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  iter_nets t (fun n ->
      (match net_driver t n with
      | None -> err "net %s has no driver" (net_name t n)
      | Some d ->
        if pin_net t d <> Some n then err "net %s: driver pin points to another net" (net_name t n));
      List.iter
        (fun p ->
          if pin_net t p <> Some n then err "net %s: sink pin points to another net" (net_name t n);
          if pin_is_output t p then err "net %s: sink pin is a signal source" (net_name t n))
        (net_sinks t n));
  Array.iter
    (fun ff ->
      match lcb_of_ff t ff with
      | exception Not_found -> err "flip-flop %s has no LCB clock source" (cell_name t ff)
      | _ -> ())
    (ffs t);
  Array.iter
    (fun lcb ->
      match pin_net t (cell_pin t lcb "CKI") with
      | None -> err "LCB %s has an unconnected clock input" (cell_name t lcb)
      | Some _ -> ())
    (lcbs t);
  List.rev !errors
