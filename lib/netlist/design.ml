module Vec = Css_util.Vec
module Point = Css_geometry.Point
module Rect = Css_geometry.Rect
module Cell = Css_liberty.Cell
module Library = Css_liberty.Library
module Wire = Css_liberty.Wire

type cell_id = int
type pin_id = int
type net_id = int
type port_id = int

type port_dir =
  | In
  | Out

type pin_owner =
  | Cell_pin of cell_id * string
  | Port_pin of port_id

type t = {
  name : string;
  library : Library.t;
  die : Rect.t;
  clock_period : float;
  (* cells *)
  cell_master : Cell.t Vec.t;
  cell_name : string Vec.t;
  cell_pos : Point.t Vec.t;
  cell_orig_pos : Point.t Vec.t;
  cell_pins : (string * pin_id) list Vec.t;
  cell_sched_latency : float Vec.t;
  (* ports *)
  port_name : string Vec.t;
  port_dir : port_dir Vec.t;
  port_pos : Point.t Vec.t;
  port_pin : pin_id Vec.t;
  (* pins *)
  pin_owner : pin_owner Vec.t;
  pin_net : net_id option Vec.t;
  (* nets *)
  net_name : string Vec.t;
  net_driver : pin_id option Vec.t;
  net_sinks : pin_id Vec.t Vec.t;
  (* clock *)
  mutable clock_root : port_id option;
  mutable ff_cache : cell_id array option;
  mutable lcb_cache : cell_id array option;
  latency_bounds : (cell_id, float * float) Hashtbl.t;
}

let create ~name ~library ~die ~clock_period () =
  {
    name;
    library;
    die;
    clock_period;
    cell_master = Vec.create ();
    cell_name = Vec.create ();
    cell_pos = Vec.create ();
    cell_orig_pos = Vec.create ();
    cell_pins = Vec.create ();
    cell_sched_latency = Vec.create ();
    port_name = Vec.create ();
    port_dir = Vec.create ();
    port_pos = Vec.create ();
    port_pin = Vec.create ();
    pin_owner = Vec.create ();
    pin_net = Vec.create ();
    net_name = Vec.create ();
    net_driver = Vec.create ();
    net_sinks = Vec.create ();
    clock_root = None;
    ff_cache = None;
    lcb_cache = None;
    latency_bounds = Hashtbl.create 16;
  }

let new_pin t owner =
  let id = Vec.push t.pin_owner owner in
  ignore (Vec.push t.pin_net None);
  id

let add_port t ~name ~dir ~pos =
  let id = Vec.push t.port_name name in
  ignore (Vec.push t.port_dir dir);
  ignore (Vec.push t.port_pos pos);
  let pin = new_pin t (Port_pin id) in
  ignore (Vec.push t.port_pin pin);
  id

let add_cell t ~name ~master ~pos =
  let cell = Library.find t.library master in
  let id = Vec.push t.cell_master cell in
  ignore (Vec.push t.cell_name name);
  ignore (Vec.push t.cell_pos pos);
  ignore (Vec.push t.cell_orig_pos pos);
  ignore (Vec.push t.cell_sched_latency 0.0);
  let pins =
    List.map (fun pn -> (pn, new_pin t (Cell_pin (id, pn)))) (cell.Cell.inputs @ cell.Cell.outputs)
  in
  ignore (Vec.push t.cell_pins pins);
  t.ff_cache <- None;
  t.lcb_cache <- None;
  id

let pin_owner t p = Vec.get t.pin_owner p

let pin_net t p = Vec.get t.pin_net p

let cell_master t c = Vec.get t.cell_master c

let pin_is_output t p =
  match pin_owner t p with
  | Port_pin port -> Vec.get t.port_dir port = In
  | Cell_pin (c, pn) -> List.mem pn (cell_master t c).Cell.outputs

let add_net t ~name ~driver ~sinks =
  if not (pin_is_output t driver) then
    invalid_arg (Printf.sprintf "Design.add_net %s: driver pin is not a signal source" name);
  List.iter
    (fun p ->
      if pin_net t p <> None then
        invalid_arg (Printf.sprintf "Design.add_net %s: pin already connected" name))
    (driver :: sinks);
  let id = Vec.push t.net_name name in
  ignore (Vec.push t.net_driver (Some driver));
  ignore (Vec.push t.net_sinks (Vec.of_list sinks));
  Vec.set t.pin_net driver (Some id);
  List.iter (fun p -> Vec.set t.pin_net p (Some id)) sinks;
  id

let net_add_sink t n p =
  if pin_net t p <> None then invalid_arg "Design.net_add_sink: pin already connected";
  if pin_is_output t p then invalid_arg "Design.net_add_sink: pin is a signal source";
  ignore (Vec.push (Vec.get t.net_sinks n) p);
  Vec.set t.pin_net p (Some n)

let set_clock_root t port = t.clock_root <- Some port

let name t = t.name
let library t = t.library
let die t = t.die
let clock_period t = t.clock_period
let num_cells t = Vec.length t.cell_master
let num_pins t = Vec.length t.pin_owner
let num_nets t = Vec.length t.net_name
let num_ports t = Vec.length t.port_name
let cell_name t c = Vec.get t.cell_name c
let cell_pos t c = Vec.get t.cell_pos c
let cell_orig_pos t c = Vec.get t.cell_orig_pos c

let move_cell t c pos = Vec.set t.cell_pos c pos

let swap_master t c master =
  let next = Library.find t.library master in
  let current = cell_master t c in
  if not (Cell.same_interface current next) then
    invalid_arg
      (Printf.sprintf "Design.swap_master: %s and %s have different interfaces"
         current.Cell.name next.Cell.name);
  Vec.set t.cell_master c next

let cell_pin t c pin_name =
  match List.assoc_opt pin_name (Vec.get t.cell_pins c) with
  | Some p -> p
  | None -> raise Not_found

let port_name t p = Vec.get t.port_name p
let port_dir t p = Vec.get t.port_dir p
let port_pos t p = Vec.get t.port_pos p
let port_pin t p = Vec.get t.port_pin p

let pin_pos t p =
  match pin_owner t p with
  | Cell_pin (c, _) -> cell_pos t c
  | Port_pin port -> port_pos t port

let net_name t n = Vec.get t.net_name n
let net_driver t n = Vec.get t.net_driver n
let net_sinks t n = Vec.to_list (Vec.get t.net_sinks n)
let net_fanout t n = Vec.length (Vec.get t.net_sinks n)

let iter_cells t f =
  for c = 0 to num_cells t - 1 do
    f c
  done

let iter_nets t f =
  for n = 0 to num_nets t - 1 do
    f n
  done

let iter_ports t f =
  for p = 0 to num_ports t - 1 do
    f p
  done

let is_ff t c = Cell.is_sequential (cell_master t c)

let is_lcb t c = Cell.is_clock_buffer (cell_master t c)

let collect t pred =
  let acc = Vec.create () in
  iter_cells t (fun c -> if pred c then ignore (Vec.push acc c));
  Vec.to_array acc

let ffs t =
  match t.ff_cache with
  | Some a -> a
  | None ->
    let a = collect t (is_ff t) in
    t.ff_cache <- Some a;
    a

let lcbs t =
  match t.lcb_cache with
  | Some a -> a
  | None ->
    let a = collect t (is_lcb t) in
    t.lcb_cache <- Some a;
    a

let clock_root t = t.clock_root

let ck_pin_name = "CK"

let lcb_out_pin_name = "CKO"

let lcb_of_ff t ff =
  let ck = cell_pin t ff ck_pin_name in
  match pin_net t ck with
  | None -> raise Not_found
  | Some net -> (
    match net_driver t net with
    | None -> raise Not_found
    | Some drv -> (
      match pin_owner t drv with
      | Cell_pin (c, _) when is_lcb t c -> c
      | Cell_pin _ | Port_pin _ -> raise Not_found))

let lcb_out_net t lcb =
  match pin_net t (cell_pin t lcb lcb_out_pin_name) with
  | Some n -> n
  | None -> invalid_arg "Design: LCB has no output net"

let ffs_of_lcb t lcb =
  let net = lcb_out_net t lcb in
  List.filter_map
    (fun p ->
      match pin_owner t p with
      | Cell_pin (c, pn) when pn = ck_pin_name && is_ff t c -> Some c
      | Cell_pin _ | Port_pin _ -> None)
    (net_sinks t net)

let lcb_fanout t lcb =
  (* an LCB driving no net (possible after lenient-recovery parsing)
     clocks nothing: fanout 0, not an error *)
  match pin_net t (cell_pin t lcb lcb_out_pin_name) with
  | None -> 0
  | Some net -> net_fanout t net

let reconnect_ff_to_lcb t ~ff ~lcb =
  if not (is_lcb t lcb) then invalid_arg "Design.reconnect_ff_to_lcb: target is not an LCB";
  let new_net = lcb_out_net t lcb in
  let ck = cell_pin t ff ck_pin_name in
  (match pin_net t ck with
  | None -> ()
  | Some old_net ->
    let sinks = Vec.get t.net_sinks old_net in
    (match Vec.find_index (fun p -> p = ck) sinks with
    | None -> ()
    | Some i ->
      (* order within a net does not matter; swap-remove *)
      let last = Vec.pop sinks in
      if i < Vec.length sinks then Vec.set sinks i last);
    Vec.set t.pin_net ck None);
  ignore (Vec.push (Vec.get t.net_sinks new_net) ck);
  Vec.set t.pin_net ck (Some new_net)

let physical_clock_latency t ff =
  match lcb_of_ff t ff with
  | exception Not_found -> 0.0
  | lcb ->
    let master = cell_master t lcb in
    let insertion =
      match master.Cell.role with
      | Cell.Clock_buffer { insertion } -> insertion
      | Cell.Combinational | Cell.Flip_flop _ -> 0.0
    in
    let wire = Library.wire t.library in
    let len = Point.manhattan (cell_pos t lcb) (cell_pos t ff) in
    insertion +. Wire.delay wire ~r_drive:master.Cell.drive_res ~len

let scheduled_latency t ff = Vec.get t.cell_sched_latency ff

let set_scheduled_latency t ff v = Vec.set t.cell_sched_latency ff v

let clear_scheduled_latencies t =
  iter_cells t (fun c -> Vec.set t.cell_sched_latency c 0.0)

let clock_latency t ff = physical_clock_latency t ff +. scheduled_latency t ff

let set_latency_bounds t ff ~lo ~hi =
  if lo < 0.0 || hi < 0.0 || lo > hi then
    invalid_arg "Design.set_latency_bounds: need 0 <= lo <= hi";
  Hashtbl.replace t.latency_bounds ff (lo, hi)

let latency_bounds t ff =
  Option.value ~default:(0.0, infinity) (Hashtbl.find_opt t.latency_bounds ff)

let clear_latency_bounds t ff = Hashtbl.remove t.latency_bounds ff

let net_pin_points t n =
  let pts =
    match net_driver t n with
    | None -> []
    | Some d -> [ pin_pos t d ]
  in
  pts @ List.map (pin_pos t) (net_sinks t n)

let net_hpwl t n = Css_geometry.Hpwl.of_points (net_pin_points t n)

let total_hpwl t =
  let acc = ref 0.0 in
  iter_nets t (fun n -> acc := !acc +. net_hpwl t n);
  !acc

let check t =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  iter_nets t (fun n ->
      (match net_driver t n with
      | None -> err "net %s has no driver" (net_name t n)
      | Some d ->
        if pin_net t d <> Some n then err "net %s: driver pin points to another net" (net_name t n));
      List.iter
        (fun p ->
          if pin_net t p <> Some n then err "net %s: sink pin points to another net" (net_name t n);
          if pin_is_output t p then err "net %s: sink pin is a signal source" (net_name t n))
        (net_sinks t n));
  Array.iter
    (fun ff ->
      match lcb_of_ff t ff with
      | exception Not_found -> err "flip-flop %s has no LCB clock source" (cell_name t ff)
      | _ -> ())
    (ffs t);
  Array.iter
    (fun lcb ->
      match pin_net t (cell_pin t lcb "CKI") with
      | None -> err "LCB %s has an unconnected clock input" (cell_name t lcb)
      | Some _ -> ())
    (lcbs t);
  List.rev !errors
