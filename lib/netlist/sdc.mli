(** SDC-lite timing constraints.

    A small subset of the Synopsys Design Constraints vocabulary, enough
    to configure an analysis and scheduling run from a side file instead
    of code:

    {v
    # comments and blank lines are ignored
    create_clock -period 600
    set_clock_uncertainty -setup 25
    set_clock_uncertainty -hold 10
    set_timing_derate -early 0.9
    set_latency_bounds ff12 0 150        # Eq. (5) window, ps
    set_max_displacement 400             # placement ECO budget, DBU
    set_lcb_fanout_limit 50
    v}

    [create_clock] cannot change a built design's period (the period is
    a construction parameter); it is instead validated against it, so a
    stale constraint file fails loudly. Consumers fold the analysis knobs
    ([setup_uncertainty], [hold_uncertainty], [early_derate]) into their
    timer configuration and the physical knobs into the evaluator's. *)

type t = {
  period : float option;  (** validated against the design *)
  setup_uncertainty : float;
  hold_uncertainty : float;
  early_derate : float option;
  latency_bounds : (string * float * float) list;  (** cell name, lo, hi *)
  max_displacement : float option;
  lcb_fanout_limit : int option;
}

(** [empty] constrains nothing. *)
val empty : t

(** Recover-or-abort policy, as in {!Io.policy}: [Abort] returns
    [Error] on the first bad line / unknown flip-flop, [Recover] skips
    it, collects the diagnostic and keeps going. *)
type policy =
  | Abort
  | Recover

(** [parse ?source ?policy s] reads the constraint text, collecting
    {!Css_util.Diag.t} diagnostics (codes [SDC-000..SDC-005]) instead of
    raising. Unknown commands carry a nearest-command hint. *)
val parse :
  ?source:string ->
  ?policy:policy ->
  string ->
  (t * Css_util.Diag.t list, Css_util.Diag.t list) result

(** [load ?policy path] reads and parses a file; unreadable files become
    an [SDC-000] diagnostic. *)
val load :
  ?policy:policy -> string -> (t * Css_util.Diag.t list, Css_util.Diag.t list) result

(** [parse_exn s] reads the constraint text.
    @raise Failure with a rendered diagnostic on unknown or malformed
    commands. *)
val parse_exn : string -> t

(** [load_exn path] reads and parses a file.
    @raise Failure as {!parse_exn}. *)
val load_exn : string -> t

(** [apply ?policy t design] installs the per-flip-flop latency windows
    on the design and validates the clock period. An unknown flip-flop
    name produces an [SDC-003] diagnostic with a nearest-name
    (edit-distance) suggestion as its hint. Valid windows are installed
    even when others fail; under [Recover] the failures are returned as
    [Ok] diagnostics. *)
val apply :
  ?policy:policy ->
  t ->
  Design.t ->
  (Css_util.Diag.t list, Css_util.Diag.t list) result

(** [apply_exn t design] is {!apply} re-raising the first error as
    [Failure] (message includes the suggestion hint, when any). *)
val apply_exn : t -> Design.t -> unit
