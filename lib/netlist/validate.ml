module Diag = Css_util.Diag
module Obs = Css_util.Obs
module Point = Css_geometry.Point
module Rect = Css_geometry.Rect

type outcome = {
  diags : Diag.t list;
  repairs : int;
  fatal : bool;
}

exception Invalid of Diag.t list

let () =
  Printexc.register_printer (function
    | Invalid ds ->
      Some
        (Printf.sprintf "Validate.Invalid:\n%s"
           (String.concat "\n" (List.map Diag.to_string ds)))
    | _ -> None)

let finite x = Float.is_finite x

(* Cycle detection over the cell-to-cell combinational graph: an edge
   u -> v for every net driven by non-FF cell [u] with a sink pin on
   non-FF cell [v]. Flip-flops break timing paths (D does not reach Q
   combinationally), so they can belong to no combinational cycle. *)
let find_comb_cycle design =
  let n = Design.num_cells design in
  let out = Array.make n [] in
  Design.iter_nets design (fun net ->
      match Design.net_driver design net with
      | None -> ()
      | Some d -> (
        match Design.pin_owner design d with
        | Design.Port_pin _ -> ()
        | Design.Cell_pin (u, _) ->
          if not (Design.is_ff design u) then
            List.iter
              (fun s ->
                match Design.pin_owner design s with
                | Design.Port_pin _ -> ()
                | Design.Cell_pin (v, _) ->
                  if not (Design.is_ff design v) then out.(u) <- v :: out.(u))
              (Design.net_sinks design net)));
  (* iterative DFS, colors: 0 white, 1 on stack, 2 done *)
  let color = Array.make n 0 in
  let parent = Array.make n (-1) in
  let cycle = ref None in
  let stack = Stack.create () in
  Design.iter_cells design (fun s ->
      if color.(s) = 0 && !cycle = None then begin
        color.(s) <- 1;
        Stack.push (s, ref out.(s)) stack;
        while (not (Stack.is_empty stack)) && !cycle = None do
          let v, succs = Stack.top stack in
          match !succs with
          | [] ->
            color.(v) <- 2;
            ignore (Stack.pop stack)
          | w :: tl ->
            succs := tl;
            if color.(w) = 1 then begin
              (* back edge v -> w: reconstruct w -> ... -> v via parents *)
              let rec collect u acc =
                if u = w then u :: acc else collect parent.(u) (u :: acc)
              in
              cycle := Some (collect v [])
            end
            else if color.(w) = 0 then begin
              color.(w) <- 1;
              parent.(w) <- v;
              Stack.push (w, ref out.(w)) stack
            end
        done;
        Stack.clear stack
      end);
  !cycle

let run ?(obs = Obs.null) ?(repair = true) design =
  let col = Diag.collector () in
  let repairs = ref 0 in
  let repaired ~code fmt =
    Printf.ksprintf
      (fun m ->
        incr repairs;
        Diag.emit col (Diag.warning ~code ~hint:"repaired in place" m))
      fmt
  in
  let err ?hint ~code fmt =
    Printf.ksprintf (fun m -> Diag.emit col (Diag.error ?hint ~code m)) fmt
  in
  let warn ~code fmt = Printf.ksprintf (fun m -> Diag.emit col (Diag.warning ~code m)) fmt in
  (* clock period *)
  let period = Design.clock_period design in
  if (not (finite period)) || period <= 0.0 then
    err ~code:"VAL-001" "clock period %g is not a positive finite number" period;
  (* die *)
  let die = Design.die design in
  if
    (not (finite die.Rect.lx && finite die.Rect.ly && finite die.Rect.hx && finite die.Rect.hy))
    || die.Rect.hx <= die.Rect.lx
    || die.Rect.hy <= die.Rect.ly
  then err ~code:"VAL-002" "degenerate die area (%g %g %g %g)" die.Rect.lx die.Rect.ly
      die.Rect.hx die.Rect.hy;
  let die_center =
    Point.make ((die.Rect.lx +. die.Rect.hx) /. 2.0) ((die.Rect.ly +. die.Rect.hy) /. 2.0)
  in
  (* per-cell numerics *)
  Design.iter_cells design (fun c ->
      let pos = Design.cell_pos design c in
      if not (finite pos.Point.x && finite pos.Point.y) then
        if repair then begin
          Design.move_cell design c die_center;
          repaired ~code:"VAL-004" "cell %s had a non-finite position; moved to die center"
            (Design.cell_name design c)
        end
        else err ~code:"VAL-004" "cell %s has a non-finite position" (Design.cell_name design c));
  Array.iter
    (fun ff ->
      let l = Design.scheduled_latency design ff in
      if not (finite l) then
        if repair then begin
          Design.set_scheduled_latency design ff 0.0;
          repaired ~code:"VAL-003" "flip-flop %s had a non-finite scheduled latency; reset to 0"
            (Design.cell_name design ff)
        end
        else
          err ~code:"VAL-003" "flip-flop %s has a non-finite scheduled latency"
            (Design.cell_name design ff);
      let lo, hi = Design.latency_bounds design ff in
      if Float.is_nan lo || Float.is_nan hi then
        if repair then begin
          Design.clear_latency_bounds design ff;
          repaired ~code:"VAL-008" "flip-flop %s had a NaN latency window; cleared"
            (Design.cell_name design ff)
        end
        else
          err ~code:"VAL-008" "flip-flop %s has a NaN latency window" (Design.cell_name design ff))
    (Design.ffs design);
  (* clock tree: every FF needs an LCB source *)
  let hosting_lcbs =
    Array.to_list (Design.lcbs design)
    |> List.filter (fun lcb ->
           Design.pin_net design (Design.cell_pin design lcb "CKO") <> None)
  in
  Array.iter
    (fun ff ->
      match Design.lcb_of_ff design ff with
      | _ -> ()
      | exception Not_found -> (
        let ck = Design.cell_pin design ff "CK" in
        match Design.pin_net design ck with
        | Some _ ->
          (* driven, but not by an LCB: rewiring a signal net is not a
             safe local repair *)
          err ~code:"VAL-005" "flip-flop %s is clocked by a non-LCB source"
            (Design.cell_name design ff)
        | None -> (
          let pos = Design.cell_pos design ff in
          let nearest =
            List.fold_left
              (fun acc lcb ->
                let d = Point.manhattan pos (Design.cell_pos design lcb) in
                match acc with
                | Some (_, bd) when bd <= d -> acc
                | _ -> Some (lcb, d))
              None hosting_lcbs
          in
          match nearest with
          | Some (lcb, _) when repair ->
            let net = Option.get (Design.pin_net design (Design.cell_pin design lcb "CKO")) in
            Design.net_add_sink design net ck;
            repaired ~code:"VAL-005" "flip-flop %s had no clock; attached to LCB %s"
              (Design.cell_name design ff) (Design.cell_name design lcb)
          | Some _ | None ->
            err ~code:"VAL-005"
              ?hint:(if hosting_lcbs = [] then Some "the design has no usable LCB" else None)
              "flip-flop %s has no LCB clock source" (Design.cell_name design ff))))
    (Design.ffs design);
  (* clock tree: every LCB needs a clock source on its input (a grafted
     or split-off clock domain shows up as an LCB with a dangling CKI) *)
  let root_net =
    match Design.clock_root design with
    | None -> None
    | Some p -> Design.pin_net design (Design.port_pin design p)
  in
  Array.iter
    (fun lcb ->
      let cki = Design.cell_pin design lcb "CKI" in
      match Design.pin_net design cki with
      | Some _ -> ()
      | None -> (
        match root_net with
        | Some net when repair ->
          Design.net_add_sink design net cki;
          repaired ~code:"VAL-009" "LCB %s had an unconnected clock input; attached to the clock root"
            (Design.cell_name design lcb)
        | Some _ | None ->
          err ~code:"VAL-009"
            ?hint:(if root_net = None then Some "the design has no clock root net" else None)
            "LCB %s has an unconnected clock input" (Design.cell_name design lcb)))
    (Design.lcbs design);
  (* combinational cycles *)
  (match find_comb_cycle design with
  | None -> ()
  | Some members ->
    let names = List.map (Design.cell_name design) members in
    let shown = if List.length names > 6 then List.filteri (fun i _ -> i < 6) names else names in
    err ~code:"VAL-007" "combinational cycle through %d cells: %s%s" (List.length names)
      (String.concat " -> " shown)
      (if List.length names > List.length shown then " -> ..." else ""));
  (* residual structural inconsistencies *)
  List.iter
    (fun m ->
      (* FF clock sourcing was already covered (and possibly repaired) above *)
      let covered =
        let has sub =
          let ls = String.length sub and lm = String.length m in
          let rec loop i = i + ls <= lm && (String.sub m i ls = sub || loop (i + 1)) in
          loop 0
        in
        has "has no LCB clock source" || has "has an unconnected clock input"
      in
      if not covered then warn ~code:"VAL-000" "%s" m)
    (Design.check design);
  let diags = Diag.diags col in
  let fatal = Diag.has_errors diags in
  if Obs.enabled obs then begin
    let count p = List.length (List.filter p diags) in
    Obs.add (Obs.counter obs "validate.errors") (count Diag.is_error);
    Obs.add
      (Obs.counter obs "validate.warnings")
      (count (fun d -> d.Diag.severity = Diag.Warning));
    Obs.add (Obs.counter obs "validate.repairs") !repairs
  end;
  { diags; repairs = !repairs; fatal }

let run_exn ?obs ?repair design =
  let o = run ?obs ?repair design in
  if o.fatal then raise (Invalid o.diags);
  o
