(** The design database: cells, pins, nets, ports, placement, clock tree.

    All entities are referenced by dense integer ids so the timing engine
    can use flat arrays. Cells are instantiated from a
    {!Css_liberty.Library.t} master; flip-flop clock pins connect to local
    clock buffer (LCB) output nets, forming the two-level clock tree the
    ICCAD-2015 contest uses: clock root port -> LCBs -> FFs.

    {b Storage layout.} Internally the database is a struct of arrays:
    every attribute is a dense column indexed by the entity id, int
    columns use [-1] as the "none" sentinel and float columns are flat
    [float array]s. Ids are assigned in construction order and are never
    reused or compacted, so they are stable for the lifetime of the
    design and survive serialization round-trips ({!Css_netlist.Io}
    writes entities in id order). The sentinel-flavoured accessors
    ([pin_net_id], [net_driver_id], [pin_cell_id], ...) are
    allocation-free counterparts of the option-returning ones, intended
    for timing-engine inner loops; see [docs/PERFORMANCE.md] for the
    layout contract.

    The clock network is modelled analytically rather than as timing-graph
    arcs: the physical clock latency of a flip-flop is the LCB insertion
    delay plus the Elmore delay of the LCB-to-FF branch
    ({!physical_clock_latency}). Clock skew scheduling explores *virtual*
    latencies on top via {!set_scheduled_latency}; the optimization phase
    then re-connects FFs to realize them physically. *)

type cell_id = int
(** Dense cell-instance index in [0, num_cells). *)

type pin_id = int
(** Dense pin index in [0, num_pins). A cell's pins are contiguous, in
    the master's inputs-then-outputs declaration order. *)

type net_id = int
(** Dense net index in [0, num_nets). *)

type port_id = int
(** Dense primary-port index in [0, num_ports). *)

type port_dir =
  | In
  | Out

type pin_owner =
  | Cell_pin of cell_id * string  (** instance id and master pin name *)
  | Port_pin of port_id

type t

(** {1 Construction} *)

(** [create ~name ~library ~die ~clock_period ()] is an empty design. *)
val create :
  name:string ->
  library:Css_liberty.Library.t ->
  die:Css_geometry.Rect.t ->
  clock_period:float ->
  unit ->
  t

(** [add_port t ~name ~dir ~pos] creates a primary port and its pin.
    O(1) amortized. *)
val add_port : t -> name:string -> dir:port_dir -> pos:Css_geometry.Point.t -> port_id

(** [add_cell t ~name ~master ~pos] instantiates [master] (a library cell
    name) and creates its pins. O(#pins) amortized.
    @raise Not_found if [master] is not in the library. *)
val add_cell : t -> name:string -> master:string -> pos:Css_geometry.Point.t -> cell_id

(** [add_net t ~name ~driver ~sinks] connects a driver pin to sink pins.
    O(#sinks).
    @raise Invalid_argument if any pin is already connected or the driver
    is an input-type pin. *)
val add_net : t -> name:string -> driver:pin_id -> sinks:pin_id list -> net_id

(** [net_add_sink t n p] attaches the unconnected input-type pin [p] to
    the existing net [n] — used when new clock buffers are inserted into
    a built design. O(1) amortized.
    @raise Invalid_argument if [p] is already connected or is a signal
    source. *)
val net_add_sink : t -> net_id -> pin_id -> unit

(** [set_clock_root t port] declares the clock source port. O(1). *)
val set_clock_root : t -> port_id -> unit

(** {1 Entity access}

    All single-entity accessors are O(1) column reads unless noted. *)

val name : t -> string
val library : t -> Css_liberty.Library.t
val die : t -> Css_geometry.Rect.t
val clock_period : t -> float
val num_cells : t -> int
val num_pins : t -> int
val num_nets : t -> int
val num_ports : t -> int
val cell_name : t -> cell_id -> string
val cell_master : t -> cell_id -> Css_liberty.Cell.t

(** [cell_pos t c] is the instance's current placement. Allocates a
    point; inner loops should read {!cell_x} / {!cell_y} instead. *)
val cell_pos : t -> cell_id -> Css_geometry.Point.t

(** [cell_x t c] / [cell_y t c] are the placement coordinates as unboxed
    floats. O(1), allocation-free. *)
val cell_x : t -> cell_id -> float

val cell_y : t -> cell_id -> float

(** [cell_orig_pos t c] is the placement position at construction time,
    the reference for the max-displacement constraint. *)
val cell_orig_pos : t -> cell_id -> Css_geometry.Point.t

(** [set_cell_orig_pos t c pos] rewrites the max-displacement anchor. A
    parsed design anchors at its parsed positions; a resumed flow run
    restores the anchors the interrupted run started from (the flow's
    durable checkpoints persist them) so movement legality is judged
    against the same reference. *)
val set_cell_orig_pos : t -> cell_id -> Css_geometry.Point.t -> unit

(** [move_cell t c pos] re-places [c]; wire delays will reflect the new
    location on the next timing propagation. O(1). *)
val move_cell : t -> cell_id -> Css_geometry.Point.t -> unit

(** [swap_master t c master] re-binds instance [c] to a different library
    cell with the same pin interface (gate sizing). Connectivity and pin
    ids are untouched; use {!Css_sta.Timer.resize_cell} to keep a live
    timer consistent.
    @raise Not_found if [master] is not in the library.
    @raise Invalid_argument if the interfaces differ. *)
val swap_master : t -> cell_id -> string -> unit

(** [cell_pin t c pin_name] is the pin id of [c]'s pin named [pin_name].
    O(#pins of [c]) — a scan over the cell's contiguous pin range
    comparing interned name tokens.
    @raise Not_found if absent. *)
val cell_pin : t -> cell_id -> string -> pin_id

val port_name : t -> port_id -> string
val port_dir : t -> port_id -> port_dir
val port_pos : t -> port_id -> Css_geometry.Point.t
val port_pin : t -> port_id -> pin_id

(** [pin_owner t p] classifies the pin's owner. Allocates the returned
    constructor; inner loops should branch on {!pin_cell_id} /
    {!pin_port_id} instead. *)
val pin_owner : t -> pin_id -> pin_owner

(** [pin_cell_id t p] is the owning cell, or [-1] for a port pin.
    O(1), allocation-free. *)
val pin_cell_id : t -> pin_id -> cell_id

(** [pin_port_id t p] is the owning port, or [-1] for a cell pin.
    O(1), allocation-free. *)
val pin_port_id : t -> pin_id -> port_id

(** [pin_name_id t p] is the interned token of the pin's master pin name
    ([-1] for port pins). Tokens are design-local; compare against
    {!pin_name_token}. O(1), allocation-free. *)
val pin_name_id : t -> pin_id -> int

(** [pin_name_token t name] is the interned token of [name], or [-1] if
    no pin of the design bears it. O(1) expected (one hash lookup). *)
val pin_name_token : t -> string -> int

(** [pin_net t p] is the net connected to [p], if any. Allocates the
    option; inner loops should use {!pin_net_id}. *)
val pin_net : t -> pin_id -> net_id option

(** [pin_net_id t p] is the connected net, or [-1] when unconnected.
    O(1), allocation-free. *)
val pin_net_id : t -> pin_id -> net_id

(** [pin_pos t p] is the pin's physical location (its cell's or port's).
    Allocates a point; inner loops should read {!pin_x} / {!pin_y}. *)
val pin_pos : t -> pin_id -> Css_geometry.Point.t

(** [pin_x t p] / [pin_y t p] are the pin's coordinates as unboxed
    floats. O(1), allocation-free. *)
val pin_x : t -> pin_id -> float

val pin_y : t -> pin_id -> float

(** [pin_dist t p q] is the Manhattan distance between two pins — the
    wire-length argument of the Elmore model. O(1), allocation-free. *)
val pin_dist : t -> pin_id -> pin_id -> float

(** [pin_is_output t p] is true for cell output pins and input-port pins
    (the signal sources of their nets). O(1), allocation-free. *)
val pin_is_output : t -> pin_id -> bool

val net_name : t -> net_id -> string

(** [net_driver t n] is the driver pin, if any. Allocates the option;
    inner loops should use {!net_driver_id}. *)
val net_driver : t -> net_id -> pin_id option

(** [net_driver_id t n] is the driver pin, or [-1] when the net has none.
    O(1), allocation-free. *)
val net_driver_id : t -> net_id -> pin_id

(** [net_sinks t n] lists the sink pins (unspecified order after
    reconnection). Allocates the list — iteration-heavy callers should
    use {!iter_net_sinks} or {!net_sink}. O(fanout). *)
val net_sinks : t -> net_id -> pin_id list

val net_fanout : t -> net_id -> int

(** [net_sink t n i] is the [i]-th sink pin, [0 <= i < net_fanout t n].
    O(1), allocation-free.
    @raise Invalid_argument when [i] is out of range. *)
val net_sink : t -> net_id -> int -> pin_id

(** [iter_net_sinks t n f] applies [f] to every sink pin without building
    a list. O(fanout), allocation-free apart from the closure. *)
val iter_net_sinks : t -> net_id -> (pin_id -> unit) -> unit

(** {1 Iteration} *)

val iter_cells : t -> (cell_id -> unit) -> unit
val iter_nets : t -> (net_id -> unit) -> unit
val iter_ports : t -> (port_id -> unit) -> unit

(** {1 Sequential elements and the clock tree} *)

(** [is_ff t c] / [is_lcb t c] classify an instance by its master.
    O(1) — reads the cached role column, not the master record. *)
val is_ff : t -> cell_id -> bool

val is_lcb : t -> cell_id -> bool

(** [ffs t] are all flip-flop instance ids in ascending order. O(1)
    after the first call per topology change (cached). *)
val ffs : t -> cell_id array

(** [lcbs t] are all LCB instance ids in ascending order. Cached like
    {!ffs}. *)
val lcbs : t -> cell_id array

(** [ff_index t c] is the dense ordinal of [c] within {!ffs} ([-1] for
    non-flip-flops) — the id space sequential-graph vertices use. O(1)
    after the first call per topology change. *)
val ff_index : t -> cell_id -> int

val clock_root : t -> port_id option

(** [clock_root_id t] is the clock root port, or [-1] when undeclared.
    O(1), allocation-free. *)
val clock_root_id : t -> port_id

(** [lcb_of_ff t ff] is the LCB currently driving [ff]'s clock pin. O(#pins of [ff]).
    @raise Not_found if the FF's CK pin is unconnected or not driven by an
    LCB. *)
val lcb_of_ff : t -> cell_id -> cell_id

(** [ffs_of_lcb t lcb] are the FFs on the LCB's output net. O(fanout). *)
val ffs_of_lcb : t -> cell_id -> cell_id list

(** [lcb_fanout t lcb] is the number of sinks on the LCB output net;
    0 when the LCB drives no net at all (a degenerate but survivable
    state lenient-recovery parsing can produce). *)
val lcb_fanout : t -> cell_id -> int

(** [reconnect_ff_to_lcb t ~ff ~lcb] moves the FF's CK pin from its current
    clock net to [lcb]'s output net. The physical clock latency changes
    accordingly. O(old fanout) for the swap-remove. Pin, net and cell ids
    are untouched — only net membership changes.
    @raise Invalid_argument if [lcb] is not an LCB or has no output net. *)
val reconnect_ff_to_lcb : t -> ff:cell_id -> lcb:cell_id -> unit

(** [physical_clock_latency t ff] is the clock arrival at the FF's CK pin:
    LCB insertion delay plus Elmore delay of the LCB-to-FF branch. FFs with
    an unconnected clock see latency 0. O(#pins of [ff]). *)
val physical_clock_latency : t -> cell_id -> float

(** [scheduled_latency t ff] is the virtual latency CSS has assigned on top
    of the physical one (initially 0). O(1), allocation-free. *)
val scheduled_latency : t -> cell_id -> float

val set_scheduled_latency : t -> cell_id -> float -> unit

(** [clear_scheduled_latencies t] resets every virtual latency to 0.
    O(num_cells). *)
val clear_scheduled_latencies : t -> unit

(** [clock_latency t ff] is [physical_clock_latency + scheduled_latency],
    the value the timer uses. *)
val clock_latency : t -> cell_id -> float

(** {1 Clock latency bounds (the paper's Eq. 5)}

    Designers may pin a flip-flop's total clock latency into a window —
    e.g. flops talking to an external interface, or regions where the
    clock tree budget is fixed. The scheduler folds the upper bound into
    its per-iteration caps; the evaluator reports violations of either
    bound. *)

(** [set_latency_bounds t ff ~lo ~hi] constrains [ff]'s total clock
    latency to [\[lo, hi\]].
    @raise Invalid_argument if [lo > hi] or either is negative. *)
val set_latency_bounds : t -> cell_id -> lo:float -> hi:float -> unit

(** [latency_bounds t ff] is the window, [(0., infinity)] by default.
    O(1) expected — bounds live in a sparse hash table, not a column. *)
val latency_bounds : t -> cell_id -> float * float

(** [clear_latency_bounds t ff] restores the default window. *)
val clear_latency_bounds : t -> cell_id -> unit

(** {1 Metrics and validation} *)

(** [net_hpwl t n] is the half-perimeter wire length of one net. *)
val net_hpwl : t -> net_id -> float

(** [total_hpwl t] sums HPWL over all nets (clock nets included, as in the
    contest evaluator). O(num_pins). *)
val total_hpwl : t -> float

(** [check t] returns human-readable consistency violations: dangling pins
    on nets, nets without drivers, FFs without clocks, LCBs driven by a
    non-clock source. Empty means well-formed. O(num_pins). *)
val check : t -> string list
