module Diag = Css_util.Diag

type t = {
  period : float option;
  setup_uncertainty : float;
  hold_uncertainty : float;
  early_derate : float option;
  latency_bounds : (string * float * float) list;
  max_displacement : float option;
  lcb_fanout_limit : int option;
}

let empty =
  {
    period = None;
    setup_uncertainty = 0.0;
    hold_uncertainty = 0.0;
    early_derate = None;
    latency_bounds = [];
    max_displacement = None;
    lcb_fanout_limit = None;
  }

type policy =
  | Abort
  | Recover

exception Line_error of Diag.t

let known_commands =
  [
    "create_clock";
    "set_clock_uncertainty";
    "set_timing_derate";
    "set_latency_bounds";
    "set_max_displacement";
    "set_lcb_fanout_limit";
  ]

let parse ?source ?(policy = Abort) s =
  let col = Diag.collector () in
  let acc = ref empty in
  let fail ?hint ~code lineno fmt =
    Printf.ksprintf
      (fun m -> raise (Line_error (Diag.error ?file:source ~line:lineno ?hint ~code m)))
      fmt
  in
  let number lineno v =
    match float_of_string_opt v with
    | Some x when Float.is_finite x -> x
    | Some _ -> fail ~code:"SDC-004" lineno "non-finite number %S" v
    | None -> fail ~code:"SDC-004" lineno "expected a number, got %S" v
  in
  let parse_line lineno words =
    match words with
    | [] -> ()
    | [ "create_clock"; "-period"; v ] -> acc := { !acc with period = Some (number lineno v) }
    | [ "set_clock_uncertainty"; "-setup"; v ] ->
      acc := { !acc with setup_uncertainty = number lineno v }
    | [ "set_clock_uncertainty"; "-hold"; v ] ->
      acc := { !acc with hold_uncertainty = number lineno v }
    | [ "set_timing_derate"; "-early"; v ] ->
      acc := { !acc with early_derate = Some (number lineno v) }
    | [ "set_latency_bounds"; cell; lo; hi ] ->
      acc :=
        {
          !acc with
          latency_bounds = (cell, number lineno lo, number lineno hi) :: !acc.latency_bounds;
        }
    | [ "set_max_displacement"; v ] ->
      acc := { !acc with max_displacement = Some (number lineno v) }
    | [ "set_lcb_fanout_limit"; v ] ->
      acc := { !acc with lcb_fanout_limit = Some (int_of_float (number lineno v)) }
    | cmd :: _ ->
      fail ~code:"SDC-001"
        ?hint:(Diag.did_you_mean cmd known_commands)
        lineno "unknown or malformed command %S" cmd
  in
  let aborted = ref false in
  (try
     String.split_on_char '\n' s
     |> List.iteri (fun i raw ->
            let lineno = i + 1 in
            (* strip trailing comments *)
            let line =
              match String.index_opt raw '#' with
              | Some j -> String.sub raw 0 j
              | None -> raw
            in
            let words =
              String.split_on_char ' ' (String.trim line) |> List.filter (fun w -> w <> "")
            in
            try parse_line lineno words
            with Line_error d ->
              Diag.emit col d;
              if policy = Abort then raise Exit)
   with Exit -> aborted := true);
  if !aborted then Error (Diag.diags col)
  else Ok ({ !acc with latency_bounds = List.rev !acc.latency_bounds }, Diag.diags col)

let first_error ds =
  match List.find_opt Diag.is_error ds with Some d -> d | None -> List.hd ds

let parse_exn s =
  match parse s with
  | Ok (t, _) -> t
  | Error ds -> failwith (Diag.to_string (first_error ds))

let load ?policy path =
  let read () =
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match read () with
  | exception Sys_error m ->
    Error [ Diag.error ~file:path ~code:"SDC-000" (Printf.sprintf "cannot read: %s" m) ]
  | s -> parse ~source:path ?policy s

let load_exn path =
  match load path with
  | Ok (t, _) -> t
  | Error ds -> failwith (Diag.to_string (first_error ds))

let apply ?(policy = Abort) t design =
  let col = Diag.collector () in
  let ff_names =
    Array.to_list (Array.map (fun ff -> Design.cell_name design ff) (Design.ffs design))
  in
  let by_name = Hashtbl.create 64 in
  Array.iter
    (fun ff -> Hashtbl.replace by_name (Design.cell_name design ff) ff)
    (Design.ffs design);
  (match t.period with
  | Some p when Float.abs (p -. Design.clock_period design) > 1e-9 ->
    Diag.emit col
      (Diag.error ~code:"SDC-002"
         (Printf.sprintf "constraint period %.6g disagrees with the design's %.6g" p
            (Design.clock_period design)))
  | Some _ | None -> ());
  List.iter
    (fun (name, lo, hi) ->
      match Hashtbl.find_opt by_name name with
      | Some ff -> (
        try Design.set_latency_bounds design ff ~lo ~hi
        with Invalid_argument m ->
          Diag.emit col
            (Diag.error ~code:"SDC-005"
               (Printf.sprintf "bad latency bounds for %S: %s" name m)))
      | None ->
        Diag.emit col
          (Diag.error ~code:"SDC-003"
             ?hint:(Diag.did_you_mean name ff_names)
             (Printf.sprintf "no flip-flop named %S" name)))
    t.latency_bounds;
  let ds = Diag.diags col in
  if Diag.error_count col > 0 && policy = Abort then Error ds else Ok ds

let apply_exn t design =
  match apply t design with
  | Ok _ -> ()
  | Error ds -> failwith (Diag.to_string (first_error ds))
