(** Design validation and repair — the flow's ingress gate.

    [run] sweeps a design for degeneracies that would otherwise poison a
    whole optimization run and either repairs them in place (where a
    safe local fix exists) or reports them as fatal:

    - {b combinational cycles} ([VAL-007], fatal): a loop of
      combinational cells breaks the timer's levelized propagation;
    - {b flip-flops with no LCB clock source} ([VAL-005]): an FF whose
      CK pin is unconnected is re-attached to the nearest LCB with an
      output net (repair); an FF clocked by a non-clock-buffer source is
      fatal;
    - {b LCBs with no clock source} ([VAL-009]): an LCB whose CKI pin is
      unconnected (a grafted or split-off clock domain) is attached to
      the clock root net (repair); fatal when the design has no clock
      root net to attach to;
    - {b non-finite numerics}: NaN/infinite scheduled latencies are
      reset to 0 ([VAL-003]), NaN/infinite cell positions are moved to
      the die center ([VAL-004]), NaN latency-bound windows are cleared
      ([VAL-008]) — all repairs;
    - {b zero, negative or non-finite clock period} ([VAL-001], fatal);
    - {b degenerate die area} ([VAL-002], fatal);
    - residual {!Design.check} inconsistencies (dangling pins, driverless
      nets) are collected as [VAL-000] warnings.

    Counts are reported through the [validate.errors] /
    [validate.warnings] / [validate.repairs] counters of the given
    {!Css_util.Obs.t} sink. The repair policy is catalogued in
    [docs/ROBUSTNESS.md]. *)

type outcome = {
  diags : Css_util.Diag.t list;  (** everything found, repaired or not *)
  repairs : int;  (** number of repairs applied (0 when [repair:false]) *)
  fatal : bool;  (** an {e unrepaired} error remains: do not optimize *)
}

(** [Invalid diags] is raised by {!run_exn} (and by flow entry) when the
    design is fatally degenerate. *)
exception Invalid of Css_util.Diag.t list

(** [run ?obs ?repair design] validates and (by default) repairs
    [design] in place. [repair:false] only reports. *)
val run : ?obs:Css_util.Obs.t -> ?repair:bool -> Design.t -> outcome

(** [run_exn ?obs ?repair design] is {!run}, raising {!Invalid} with the
    collected diagnostics when the outcome is fatal. *)
val run_exn : ?obs:Css_util.Obs.t -> ?repair:bool -> Design.t -> outcome
