(** Plain-text save/load of designs.

    The format is line-oriented and self-describing:

    {v
    design <name> period <T>
    die <lx> <ly> <hx> <hy>
    port <name> in|out <x> <y>
    cell <name> <master> <x> <y>
    net <name> <ref> <ref> ...          # first ref is the driver
    clockroot <portname>
    latency <cellname> <ps>             # scheduled (virtual) latency
    bounds <cellname> <lo> <hi>         # clock latency window
    v}

    where [<ref>] is [cell:pin] for instance pins and [port:<name>] for
    primary ports. Loading requires the same cell library the design was
    built against (masters are referenced by name).

    Malformed input never escapes as a raw exception: the primary entry
    points ({!of_string}, {!load}) return [result]s carrying
    severity-tagged {!Css_util.Diag.t} diagnostics (codes
    [IO-000..IO-012], catalogued in [docs/ROBUSTNESS.md]); the [*_exn]
    convenience wrappers re-raise the first error as [Failure] with the
    diagnostic's one-line rendering. *)

(** [float_to_string x] is the shortest decimal form that parses back
    ([float_of_string]) to the exact same float — the printer behind
    every float this format emits. Exposed for other bit-exact
    serializers (the flow's durable checkpoints). Non-finite values
    print as ["inf"]/["-inf"]/["nan"], which [float_of_string] also
    round-trips. *)
val float_to_string : float -> string

(** [save t path] writes the design. *)
val save : Design.t -> string -> unit

(** [to_string t] is the serialized form. *)
val to_string : Design.t -> string

(** Recover-or-abort policy for malformed lines:
    - [Abort] (default): stop at the first error and return [Error].
    - [Recover]: skip the offending line, collect its diagnostic, and
      keep parsing; the parse succeeds if a design could be built at
      all, with the collected diagnostics attached. A missing design
      header is never recoverable. *)
type policy =
  | Abort
  | Recover

(** [of_string ?source ?policy ~library s] parses the serialized form.
    [source] names the input in diagnostics (e.g. the file path). On
    [Ok (design, diags)], [diags] are the collected warnings — and,
    under {!Recover}, the errors that were skipped over. *)
val of_string :
  ?source:string ->
  ?policy:policy ->
  library:Css_liberty.Library.t ->
  string ->
  (Design.t * Css_util.Diag.t list, Css_util.Diag.t list) result

(** [load ?policy ~library path] reads a design back; unreadable files
    become an [IO-000] diagnostic rather than [Sys_error]. *)
val load :
  ?policy:policy ->
  library:Css_liberty.Library.t ->
  string ->
  (Design.t * Css_util.Diag.t list, Css_util.Diag.t list) result

(** [load_exn ~library path] reads a design back.
    @raise Failure with a rendered diagnostic on malformed input. *)
val load_exn : library:Css_liberty.Library.t -> string -> Design.t

(** [of_string_exn ~library s] parses the serialized form.
    @raise Failure with a rendered diagnostic on malformed input. *)
val of_string_exn : library:Css_liberty.Library.t -> string -> Design.t
