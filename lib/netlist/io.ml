module Point = Css_geometry.Point
module Rect = Css_geometry.Rect
module Diag = Css_util.Diag

let pin_ref t p =
  match Design.pin_owner t p with
  | Design.Cell_pin (c, pin_name) -> Printf.sprintf "%s:%s" (Design.cell_name t c) pin_name
  | Design.Port_pin port -> Printf.sprintf "port:%s" (Design.port_name t port)

(* shortest decimal form that parses back to the exact same float: the
   text format doubles as Flow.clone's deep-copy channel and as the
   checkpoint baseline of the differential oracles, so serialization
   must not perturb a single bit *)
let fstr x =
  let s = Printf.sprintf "%.15g" x in
  if float_of_string s = x then s else Printf.sprintf "%.17g" x

let float_to_string = fstr

let to_string t =
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "design %s period %s" (Design.name t) (fstr (Design.clock_period t));
  let die = Design.die t in
  line "die %s %s %s %s" (fstr die.Rect.lx) (fstr die.Rect.ly) (fstr die.Rect.hx)
    (fstr die.Rect.hy);
  Design.iter_ports t (fun p ->
      let pos = Design.port_pos t p in
      line "port %s %s %s %s" (Design.port_name t p)
        (match Design.port_dir t p with Design.In -> "in" | Design.Out -> "out")
        (fstr pos.Point.x) (fstr pos.Point.y));
  Design.iter_cells t (fun c ->
      let pos = Design.cell_pos t c in
      line "cell %s %s %s %s" (Design.cell_name t c)
        (Design.cell_master t c).Css_liberty.Cell.name (fstr pos.Point.x) (fstr pos.Point.y));
  Design.iter_nets t (fun n ->
      match Design.net_driver t n with
      | None -> ()
      | Some d ->
        let refs = List.map (pin_ref t) (d :: Design.net_sinks t n) in
        line "net %s %s" (Design.net_name t n) (String.concat " " refs));
  (match Design.clock_root t with
  | None -> ()
  | Some p -> line "clockroot %s" (Design.port_name t p));
  Design.iter_cells t (fun c ->
      let l = Design.scheduled_latency t c in
      if l <> 0.0 then line "latency %s %s" (Design.cell_name t c) (fstr l));
  Array.iter
    (fun ff ->
      let lo, hi = Design.latency_bounds t ff in
      if lo > 0.0 || hi < infinity then
        line "bounds %s %s %s" (Design.cell_name t ff) (fstr lo) (fstr hi))
    (Design.ffs t);
  Buffer.contents buf

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

type policy =
  | Abort
  | Recover

(* Raised while processing one line; caught by the line loop which either
   records-and-skips (Recover) or stops the parse (Abort). *)
exception Line_error of Diag.t

let of_string ?source ?(policy = Abort) ~library s =
  let col = Diag.collector () in
  let fail ?hint ~code lineno fmt =
    Printf.ksprintf
      (fun m -> raise (Line_error (Diag.error ?file:source ~line:lineno ?hint ~code m)))
      fmt
  in
  let number lineno what v =
    match float_of_string_opt v with
    | Some x -> x
    | None -> fail ~code:"IO-007" lineno "expected a number for %s, got %S" what v
  in
  let lines = String.split_on_char '\n' s in
  let design = ref None in
  let cells = Hashtbl.create 64 in
  let ports = Hashtbl.create 16 in
  let pending_die = ref None in
  let header = ref None in
  let known tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] in
  let get_design lineno =
    match !design with
    | Some d -> d
    | None ->
      fail ~code:"IO-002" lineno "design header incomplete (need both 'design' and 'die' lines)"
  in
  let maybe_create () =
    match (!header, !pending_die) with
    | Some (name, period), Some die when !design = None ->
      design := Some (Design.create ~name ~library ~die ~clock_period:period ())
    | _ -> ()
  in
  let resolve lineno d r =
    match String.index_opt r ':' with
    | Some i when String.sub r 0 i = "port" ->
      let pname = String.sub r (i + 1) (String.length r - i - 1) in
      (match Hashtbl.find_opt ports pname with
      | Some p -> Design.port_pin d p
      | None ->
        fail ~code:"IO-003" ?hint:(Diag.did_you_mean pname (known ports)) lineno
          "unknown port %s" pname)
    | Some i ->
      let cname = String.sub r 0 i in
      let pin = String.sub r (i + 1) (String.length r - i - 1) in
      (match Hashtbl.find_opt cells cname with
      | Some c -> (
        try Design.cell_pin d c pin
        with Not_found -> fail ~code:"IO-005" lineno "unknown pin %s" r)
      | None ->
        fail ~code:"IO-004" ?hint:(Diag.did_you_mean cname (known cells)) lineno
          "unknown cell %s" cname)
    | None -> fail ~code:"IO-009" lineno "malformed pin reference %s" r
  in
  let parse_line lineno line =
    let words = String.split_on_char ' ' line |> List.filter (fun w -> w <> "") in
    match words with
    | [ "design"; name; "period"; t ] ->
      header := Some (name, number lineno "the clock period" t);
      maybe_create ()
    | [ "die"; lx; ly; hx; hy ] ->
      let f what v = number lineno what v in
      pending_die :=
        Some
          (Rect.make ~lx:(f "die lx" lx) ~ly:(f "die ly" ly) ~hx:(f "die hx" hx)
             ~hy:(f "die hy" hy));
      maybe_create ()
    | [ "port"; name; dir; x; y ] ->
      let d = get_design lineno in
      let dir =
        match dir with
        | "in" -> Design.In
        | "out" -> Design.Out
        | _ -> fail ~code:"IO-008" ~hint:"use 'in' or 'out'" lineno "bad port direction %s" dir
      in
      if Hashtbl.mem ports name then fail ~code:"IO-011" lineno "duplicate port %s" name;
      let p =
        Design.add_port d ~name ~dir
          ~pos:(Point.make (number lineno "port x" x) (number lineno "port y" y))
      in
      Hashtbl.replace ports name p
    | [ "cell"; name; master; x; y ] ->
      let d = get_design lineno in
      if Hashtbl.mem cells name then fail ~code:"IO-011" lineno "duplicate cell %s" name;
      let c =
        try
          Design.add_cell d ~name ~master
            ~pos:(Point.make (number lineno "cell x" x) (number lineno "cell y" y))
        with Not_found ->
          let names =
            List.map
              (fun (c : Css_liberty.Cell.t) -> c.Css_liberty.Cell.name)
              (Css_liberty.Library.cells library)
          in
          fail ~code:"IO-006" ?hint:(Diag.did_you_mean master names) lineno
            "unknown master %s" master
      in
      Hashtbl.replace cells name c
    | "net" :: name :: driver :: sinks ->
      let d = get_design lineno in
      (try
         ignore
           (Design.add_net d ~name ~driver:(resolve lineno d driver)
              ~sinks:(List.map (resolve lineno d) sinks))
       with Invalid_argument m -> fail ~code:"IO-012" lineno "cannot build net %s: %s" name m)
    | [ "clockroot"; name ] ->
      let d = get_design lineno in
      (match Hashtbl.find_opt ports name with
      | Some p -> Design.set_clock_root d p
      | None ->
        fail ~code:"IO-003" ?hint:(Diag.did_you_mean name (known ports)) lineno
          "unknown clock root port %s" name)
    | [ "latency"; name; v ] ->
      let d = get_design lineno in
      (match Hashtbl.find_opt cells name with
      | Some c -> Design.set_scheduled_latency d c (number lineno "the latency" v)
      | None ->
        fail ~code:"IO-004" ?hint:(Diag.did_you_mean name (known cells)) lineno
          "unknown cell %s" name)
    | [ "bounds"; name; lo; hi ] ->
      let d = get_design lineno in
      (match Hashtbl.find_opt cells name with
      | Some c -> (
        try
          Design.set_latency_bounds d c ~lo:(number lineno "the lower bound" lo)
            ~hi:(number lineno "the upper bound" hi)
        with Invalid_argument m -> fail ~code:"IO-010" lineno "bad latency bounds: %s" m)
      | None ->
        fail ~code:"IO-004" ?hint:(Diag.did_you_mean name (known cells)) lineno
          "unknown cell %s" name)
    | _ -> fail ~code:"IO-001" lineno "unrecognized line: %s" line
  in
  let aborted = ref false in
  (try
     List.iteri
       (fun i raw ->
         let lineno = i + 1 in
         let line = String.trim raw in
         if line <> "" && line.[0] <> '#' then
           try parse_line lineno line
           with Line_error d ->
             Diag.emit col d;
             if policy = Abort then raise Exit)
       lines
   with Exit -> aborted := true);
  match !design with
  | Some d when not !aborted -> Ok (d, Diag.diags col)
  | Some _ -> Error (Diag.diags col)
  | None ->
    if Diag.error_count col = 0 then
      Diag.emit col
        (Diag.error ?file:source ~code:"IO-002"
           "missing design header (need 'design <name> period <T>' and 'die <lx> <ly> <hx> <hy>')");
    Error (Diag.diags col)

let first_error ds =
  match List.find_opt Diag.is_error ds with Some d -> d | None -> List.hd ds

let of_string_exn ~library s =
  match of_string ~library s with
  | Ok (d, _) -> d
  | Error ds -> failwith (Diag.to_string (first_error ds))

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load ?policy ~library path =
  match read_file path with
  | exception Sys_error m ->
    Error [ Diag.error ~file:path ~code:"IO-000" (Printf.sprintf "cannot read: %s" m) ]
  | s -> of_string ~source:path ?policy ~library s

let load_exn ~library path =
  match load ~library path with
  | Ok (d, _) -> d
  | Error ds -> failwith (Diag.to_string (first_error ds))
